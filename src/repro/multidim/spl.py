"""SPL: the naive budget-splitting solution.

Every user reports all ``d`` attributes, each sanitized with ``epsilon / d``
(sequential composition).  The paper does not attack SPL (its utility is too
low for realistic deployments) but it is implemented as the natural baseline
for the utility comparisons.
"""

from __future__ import annotations

import numpy as np

from ..core.composition import split_budget
from ..core.dataset import TabularDataset
from ..core.frequencies import FrequencyEstimate
from ..protocols.registry import make_protocol
from .base import MultidimReports, MultidimSolution


class SPL(MultidimSolution):
    """Budget-splitting solution: all attributes, ``epsilon/d`` each."""

    name = "SPL"

    def collect(self, dataset: TabularDataset) -> MultidimReports:
        self._check_dataset(dataset)
        per_attribute_epsilon = split_budget(self.epsilon, self.domain.d)
        reports = []
        for j in range(self.domain.d):
            oracle = make_protocol(
                self.protocol, self.domain.size_of(j), per_attribute_epsilon, rng=self._rng
            )
            reports.append(oracle.randomize_many(dataset.column(j)))
        return MultidimReports(
            solution=self.name,
            protocol=self.protocol,
            epsilon=self.epsilon,
            domain=self.domain,
            n=dataset.n,
            per_attribute=reports,
            extra={"per_attribute_epsilon": per_attribute_epsilon},
        )

    def estimate(self, reports: MultidimReports) -> list[FrequencyEstimate]:
        """Per-attribute unbiased estimates.

        ``reports.per_attribute[j]`` may be a monolithic report array or an
        iterable of report chunks (bounded-memory path); both are
        byte-identical.
        """
        return self._estimates_from_counts(*self._counts_from_reports(reports))

    # -- streaming hooks ----------------------------------------------------
    def _counts_from_reports(self, reports: MultidimReports):
        per_attribute_epsilon = split_budget(self.epsilon, self.domain.d)
        counts = []
        for j in range(self.domain.d):
            oracle = make_protocol(
                self.protocol, self.domain.size_of(j), per_attribute_epsilon, rng=self._rng
            )
            counts.append(oracle.support_counts(reports.per_attribute[j]))
        return counts, [reports.n] * self.domain.d

    def _estimates_from_counts(self, counts, ns) -> list[FrequencyEstimate]:
        per_attribute_epsilon = split_budget(self.epsilon, self.domain.d)
        estimates = []
        for j in range(self.domain.d):
            oracle = make_protocol(
                self.protocol, self.domain.size_of(j), per_attribute_epsilon, rng=self._rng
            )
            estimate = oracle._estimate_from_counts(
                np.asarray(counts[j], dtype=float), int(ns[j])
            )
            estimates.append(
                FrequencyEstimate(
                    estimates=estimate.estimates,
                    attribute=self.domain[j].name,
                    n=int(ns[j]),
                    metadata={**estimate.metadata, "solution": self.name},
                )
            )
        return estimates
