"""Solutions for multidimensional frequency estimation under LDP."""

from .base import MultidimReports, MultidimSolution, sample_attributes
from .rsfd import RSFD
from .rsrfd import RSRFD
from .smp import SMP
from .spl import SPL
from .variance import averaged_analytical_variance, rsfd_variance, rsrfd_variance

__all__ = [
    "MultidimReports",
    "MultidimSolution",
    "sample_attributes",
    "SPL",
    "SMP",
    "RSFD",
    "RSRFD",
    "rsfd_variance",
    "rsrfd_variance",
    "averaged_analytical_variance",
]
