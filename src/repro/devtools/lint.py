"""**reprolint** — the driver behind ``python -m repro.devtools.lint``.

The rule catalogue lives in :mod:`repro.devtools.checkers`; this module owns
everything around it:

* file discovery (``src`` + ``tests`` by default; explicit file arguments are
  always linted, directory walks skip lint fixtures and hidden dirs),
* per-line suppressions (``# reprolint: disable=CODE[,CODE...]``, bare
  ``# reprolint: disable`` silences every rule on that line),
* a checked-in baseline (``.reprolint-baseline.json``) for grandfathered
  findings, matched on ``(path, rule, stripped line content)`` so entries
  survive unrelated line-number drift,
* text and ``--format json`` reporters, and POSIX-style exit codes
  (0 clean, 1 violations, 2 usage error).

Run it from the repo root::

    PYTHONPATH=src python -m repro.devtools.lint            # src + tests
    PYTHONPATH=src python -m repro.devtools.lint --format json src
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from collections import Counter
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.devtools.checkers import (
    RULES,
    FileContext,
    Violation,
    build_context,
    rule_catalogue,
)

#: Report schema / baseline schema version, bumped on breaking change.
REPORT_VERSION = 1

#: Default baseline location, resolved relative to the working directory.
DEFAULT_BASELINE = Path(".reprolint-baseline.json")

#: Pseudo-rule used for files the parser rejects — suppressible nowhere.
PARSE_ERROR_RULE = "REPRO000"

#: Directory names never descended into during discovery.  Fixture files are
#: deliberately-broken inputs for the lint tests; explicit file arguments
#: still reach them.
_SKIP_DIR_NAMES = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".pytest_cache",
    "fixtures",
}

_SUPPRESSION_RE = re.compile(
    r"#\s*reprolint:\s*disable(?:\s*=\s*(?P<codes>[A-Z0-9_,\s]+))?"
)


def iter_source_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield the Python files named by ``paths``, in deterministic order.

    File arguments are yielded as-is (even fixtures); directories are walked
    recursively, skipping hidden/fixture/cache directories.
    """
    seen: set[Path] = set()
    for path in paths:
        if path.is_file():
            resolved = path.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield path
        elif path.is_dir():
            for child in sorted(path.rglob("*.py")):
                if any(
                    part in _SKIP_DIR_NAMES or part.startswith(".")
                    for part in child.relative_to(path).parts[:-1]
                ):
                    continue
                resolved = child.resolve()
                if resolved not in seen:
                    seen.add(resolved)
                    yield child
        else:
            raise FileNotFoundError(str(path))


def suppressed_codes(line: str) -> set[str] | None:
    """Codes disabled by a ``# reprolint: disable`` comment on ``line``.

    Returns ``None`` when there is no suppression comment; an empty set means
    a bare ``disable`` (silence everything on the line).
    """
    match = _SUPPRESSION_RE.search(line)
    if match is None:
        return None
    codes = match.group("codes")
    if codes is None:
        return set()
    return {code.strip() for code in codes.split(",") if code.strip()}


def _is_suppressed(violation: Violation, ctx: FileContext) -> bool:
    if violation.rule == PARSE_ERROR_RULE:
        return False
    codes = suppressed_codes(ctx.line_content(violation.line))
    if codes is None:
        return False
    return not codes or violation.rule in codes


def lint_file(path: Path, display_path: str | None = None) -> list[Violation]:
    """Run every registered rule over one file, honouring suppressions."""
    display = display_path if display_path is not None else str(path)
    display = display.replace("\\", "/")
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return [
            Violation(
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                rule=PARSE_ERROR_RULE,
                name="parse-error",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = build_context(display, source, tree)
    violations = [
        violation
        for registered in RULES
        for violation in registered.check(ctx)
        if not _is_suppressed(violation, ctx)
    ]
    violations.sort(key=lambda v: (v.line, v.col, v.rule))
    return violations


def lint_paths(paths: Sequence[Path]) -> tuple[list[Violation], int]:
    """Lint every file under ``paths``; returns (violations, files_checked)."""
    violations: list[Violation] = []
    files_checked = 0
    for path in iter_source_files(paths):
        files_checked += 1
        violations.extend(lint_file(path))
    return violations, files_checked


# --------------------------------------------------------------------------- #
# Baseline
# --------------------------------------------------------------------------- #
def _baseline_key(violation: Violation) -> tuple[str, str, str]:
    return (violation.path, violation.rule, violation.content)


def load_baseline(path: Path) -> Counter[tuple[str, str, str]]:
    """Load baseline entries as a multiset of ``(path, rule, content)``."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return Counter()
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError(f"{path}: not a reprolint baseline file")
    entries: Counter[tuple[str, str, str]] = Counter()
    for entry in payload["entries"]:
        entries[(entry["path"], entry["rule"], entry.get("content", ""))] += 1
    return entries


def write_baseline(path: Path, violations: Iterable[Violation]) -> None:
    """Persist the current findings as the new grandfathered baseline."""
    entries = [
        {
            "path": v.path,
            "rule": v.rule,
            "line": v.line,
            "content": v.content,
        }
        for v in violations
    ]
    payload = {"version": REPORT_VERSION, "entries": entries}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def apply_baseline(
    violations: Sequence[Violation], baseline: Counter[tuple[str, str, str]]
) -> tuple[list[Violation], int]:
    """Drop findings covered by the baseline multiset.

    Returns ``(fresh_violations, matched_count)``; each baseline entry
    absorbs at most one finding, so a *second* occurrence of a grandfathered
    pattern still fails.
    """
    remaining = Counter(baseline)
    fresh: list[Violation] = []
    matched = 0
    for violation in violations:
        key = _baseline_key(violation)
        if remaining[key] > 0:
            remaining[key] -= 1
            matched += 1
        else:
            fresh.append(violation)
    return fresh, matched


# --------------------------------------------------------------------------- #
# Reporters + CLI
# --------------------------------------------------------------------------- #
def render_text(violations: Sequence[Violation], files_checked: int) -> str:
    lines = [
        f"{v.path}:{v.line}:{v.col}: {v.rule} ({v.name}) {v.message}"
        for v in violations
    ]
    noun = "file" if files_checked == 1 else "files"
    if violations:
        count = len(violations)
        lines.append(
            f"reprolint: {count} violation{'s' if count != 1 else ''} "
            f"in {files_checked} {noun}"
        )
    else:
        lines.append(f"reprolint: clean ({files_checked} {noun} checked)")
    return "\n".join(lines)


def render_json(
    violations: Sequence[Violation], files_checked: int, baselined: int
) -> str:
    payload = {
        "version": REPORT_VERSION,
        "files_checked": files_checked,
        "baselined": baselined,
        "rules": rule_catalogue(),
        "counts": dict(sorted(Counter(v.rule for v in violations).items())),
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "rule": v.rule,
                "name": v.name,
                "message": v.message,
            }
            for v in violations
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Project-invariant static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file even if present",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.no_baseline and (args.baseline is not None or args.write_baseline):
        parser.error("--no-baseline cannot be combined with --baseline/--write-baseline")

    if args.list_rules:
        for code, description in sorted(rule_catalogue().items()):
            print(f"{code}  {description}")
        return 0

    paths = list(args.paths) if args.paths else [Path("src"), Path("tests")]
    for path in paths:
        if not path.exists():
            parser.error(f"no such file or directory: {path}")

    try:
        violations, files_checked = lint_paths(paths)
    except FileNotFoundError as exc:
        parser.error(f"no such file or directory: {exc}")

    baseline_path = args.baseline if args.baseline is not None else DEFAULT_BASELINE
    if args.write_baseline:
        write_baseline(baseline_path, violations)
        print(
            f"reprolint: wrote {len(violations)} baseline "
            f"entr{'y' if len(violations) == 1 else 'ies'} to {baseline_path}"
        )
        return 0

    baselined = 0
    if not args.no_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as exc:
            parser.error(str(exc))
        violations, baselined = apply_baseline(violations, baseline)

    if args.format == "json":
        print(render_json(violations, files_checked, baselined))
    else:
        print(render_text(violations, files_checked))
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
