"""Developer tooling for the :mod:`repro` codebase.

This package never ships runtime behaviour — it holds the project's own
development infrastructure, starting with **reprolint**
(:mod:`repro.devtools.lint`): an AST-based static-analysis pass that turns
the repository's documented correctness conventions (RNG discipline, the
final-dispatch oracle contract, cell-parameter completeness, cell-store seam
hygiene) into machine-checked rules.  Run it as::

    python -m repro.devtools.lint [--format json] [paths...]

See :mod:`repro.devtools.checkers` for the rule catalogue.
"""

from __future__ import annotations
