"""Rule catalogue of **reprolint** — the project-invariant checkers.

Each checker encodes one of the repository's documented correctness
conventions as an AST pass.  The conventions exist because six refactors
(executor seam, cell store seam, delta-backed profiles, streaming dispatch)
made determinism and cache-key hygiene *conventions of the code*, not
properties the type system enforces; these rules make them machine-checked.

Rule codes are grouped by convention:

* ``REPRO1xx`` — RNG discipline: every stochastic component must derive its
  stream through :mod:`repro.core.rng`.
* ``REPRO2xx`` — frequency-oracle contract: the chunk dispatch lives on the
  base class *finally*; concrete oracles implement the dense kernels.
* ``REPRO3xx`` — cell-parameter completeness: any flag that changes row
  fidelity must be part of the :class:`GridCell` params, so caches never mix
  fidelities.
* ``REPRO4xx`` — seam hygiene: cell stores are built through
  ``CellStore.from_options``; serialized payloads feeding hashes must be
  canonical (``sort_keys=True``).
* ``REPRO5xx`` — general determinism/robustness hazards (mutable default
  arguments, silently swallowed broad exceptions).

A checker is a function ``check(ctx) -> Iterable[Violation]`` registered
with :func:`rule`; :mod:`repro.devtools.lint` drives the catalogue over a
file set and owns suppressions, baselines and the CLI.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

#: Flags that change row fidelity; every ``plan_*`` function accepting one
#: must thread it into its cells' params dict (REPRO301).
FIDELITY_KWARGS = ("amortize_nk", "chunk_size", "packed", "redraw_attributes")

#: Methods whose dispatch is final on :class:`FrequencyOracle` (REPRO201).
ORACLE_FINAL_METHODS = (
    "accumulator",
    "attack_many",
    "estimator_fingerprint",
    "support_counts",
)

#: Protected dense kernels every concrete oracle must implement (REPRO202).
ORACLE_REQUIRED_KERNELS = ("_attack_dense", "_support_counts_dense")

#: Classes that may only be constructed behind ``CellStore.from_options``
#: (outside their defining module and tests) — REPRO401.
STORE_CLASSES = ("GridCache", "SQLiteCellStore")

#: Call targets whose arguments act as seeds (REPRO103 time-based seeding).
_SEEDING_CALLEES = (
    "default_rng",
    "derive_rng",
    "derive_seed_sequence",
    "ensure_rng",
    "seed",
    "SeedSequence",
    "spawn_rngs",
)


@dataclass(frozen=True)
class Violation:
    """One finding: where it is, which rule fired and why."""

    path: str
    line: int
    col: int
    rule: str
    name: str
    message: str
    #: Stripped source line the finding sits on — the baseline matches on
    #: this (plus path and rule), so entries survive unrelated line drift.
    content: str = ""


@dataclass
class FileContext:
    """Everything the checkers need to know about one parsed module."""

    display_path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    is_tests: bool = False
    is_rng_module: bool = False
    # names bound to modules/objects of interest by this module's imports
    numpy: set[str] = field(default_factory=set)
    numpy_random: set[str] = field(default_factory=set)
    default_rng: set[str] = field(default_factory=set)
    stdlib_random: set[str] = field(default_factory=set)
    time_module: set[str] = field(default_factory=set)
    hashlib_module: set[str] = field(default_factory=set)
    json_module: set[str] = field(default_factory=set)
    json_dumps: set[str] = field(default_factory=set)
    #: classes defined in this module (defining modules are self-exempt)
    defined_classes: set[str] = field(default_factory=set)

    def line_content(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def violation(self, node: ast.AST, rule: "Rule", message: str) -> Violation:
        lineno = getattr(node, "lineno", 1)
        return Violation(
            path=self.display_path,
            line=lineno,
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule.code,
            name=rule.name,
            message=message,
            content=self.line_content(lineno),
        )


Checker = Callable[[FileContext], Iterable[Violation]]


@dataclass(frozen=True)
class Rule:
    """One registered rule: code, short name and the checker behind it."""

    code: str
    name: str
    check: Checker

    @property
    def description(self) -> str:
        return (self.check.__doc__ or "").strip().splitlines()[0]


RULES: list[Rule] = []


def rule(code: str, name: str) -> Callable[[Checker], Checker]:
    """Register a checker function under ``code`` in the rule catalogue."""

    def register(check: Checker) -> Checker:
        RULES.append(Rule(code=code, name=name, check=check))
        return check

    return register


def rule_catalogue() -> dict[str, str]:
    """``{code: one-line description}`` of every registered rule."""
    return {r.code: f"{r.name}: {r.description}" for r in RULES}


# --------------------------------------------------------------------------- #
# AST helpers
# --------------------------------------------------------------------------- #
def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def build_context(display_path: str, source: str, tree: ast.Module) -> FileContext:
    """Parse imports and path roles into a :class:`FileContext`."""
    normalized = display_path.replace("\\", "/")
    parts = normalized.split("/")
    ctx = FileContext(
        display_path=normalized,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        is_tests=(
            "tests" in parts
            or parts[-1].startswith("test_")
            or parts[-1] == "conftest.py"
        ),
        is_rng_module=normalized.endswith("repro/core/rng.py"),
    )
    targets = {
        "numpy": ctx.numpy,
        "numpy.random": ctx.numpy_random,
        "numpy.random.default_rng": ctx.default_rng,
        "random": ctx.stdlib_random,
        "time": ctx.time_module,
        "hashlib": ctx.hashlib_module,
        "json": ctx.json_module,
        "json.dumps": ctx.json_dumps,
    }
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bucket = targets.get(alias.name)
                if bucket is not None:
                    bucket.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                bucket = targets.get(f"{node.module}.{alias.name}")
                if bucket is not None:
                    bucket.add(alias.asname or alias.name)
        elif isinstance(node, ast.ClassDef):
            ctx.defined_classes.add(node.name)
    return ctx


def _calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def _is_numpy_seed_call(ctx: FileContext, call: ast.Call) -> bool:
    name = dotted_name(call.func)
    if name is None:
        return False
    return any(name == f"{alias}.random.seed" for alias in ctx.numpy) or any(
        name == f"{alias}.seed" for alias in ctx.numpy_random
    )


def _is_default_rng_call(ctx: FileContext, call: ast.Call) -> bool:
    name = dotted_name(call.func)
    if name is None:
        return False
    return (
        name in ctx.default_rng
        or any(name == f"{alias}.random.default_rng" for alias in ctx.numpy)
        or any(name == f"{alias}.default_rng" for alias in ctx.numpy_random)
    )


# --------------------------------------------------------------------------- #
# REPRO1xx — RNG discipline
# --------------------------------------------------------------------------- #
@rule("REPRO101", "numpy-global-seed")
def check_numpy_global_seed(ctx: FileContext) -> Iterator[Violation]:
    """``np.random.seed`` mutates process-global legacy RNG state.

    Grid cells derive independent streams from the master seed alone
    (:func:`repro.core.rng.derive_rng`); global seeding makes results depend
    on scheduling order and silently couples unrelated components.  Applies
    everywhere, tests included.
    """
    this = _rule("REPRO101")
    for call in _calls(ctx.tree):
        if _is_numpy_seed_call(ctx, call):
            yield ctx.violation(
                call,
                this,
                "np.random.seed() sets process-global RNG state; thread a "
                "generator from repro.core.rng (ensure_rng/derive_rng) instead",
            )


@rule("REPRO102", "naked-default-rng")
def check_naked_default_rng(ctx: FileContext) -> Iterator[Violation]:
    """Argument-less ``np.random.default_rng()`` draws OS entropy.

    A fresh nondeterministic generator anywhere in the library breaks the
    bit-identical-for-any-executor guarantee.  The one blessed construction
    site is :func:`repro.core.rng.ensure_rng` (``rng=None`` explicitly asks
    for nondeterminism); everything else must accept an ``RngLike`` and
    normalize it there.  Tests are exempt.
    """
    if ctx.is_rng_module or ctx.is_tests:
        return
    this = _rule("REPRO102")
    for call in _calls(ctx.tree):
        if _is_default_rng_call(ctx, call) and not call.args and not call.keywords:
            yield ctx.violation(
                call,
                this,
                "argument-less np.random.default_rng() is nondeterministic; "
                "accept an RngLike and use repro.core.rng.ensure_rng/derive_rng",
            )


@rule("REPRO103", "nondeterministic-seed")
def check_nondeterministic_seed(ctx: FileContext) -> Iterator[Violation]:
    """Seeding from the stdlib ``random`` module or wall-clock time.

    ``random``'s global Mersenne Twister and ``time.time()``-derived seeds
    are invisible to the grid's SeedSequence derivation; both reintroduce
    run-to-run nondeterminism.  Only :mod:`repro.core.rng` and tests may
    touch them.
    """
    if ctx.is_rng_module or ctx.is_tests:
        return
    this = _rule("REPRO103")
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            if any(alias.name == "random" for alias in node.names):
                yield ctx.violation(
                    node,
                    this,
                    "the stdlib random module bypasses repro.core.rng; use a "
                    "numpy Generator threaded from the caller",
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                yield ctx.violation(
                    node,
                    this,
                    "importing from the stdlib random module bypasses "
                    "repro.core.rng; use a numpy Generator threaded from the caller",
                )
        elif isinstance(node, ast.Call):
            callee = dotted_name(node.func)
            if callee is None or callee.split(".")[-1] not in _SEEDING_CALLEES:
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for inner in _calls(arg):
                    inner_name = dotted_name(inner.func)
                    if inner_name is not None and any(
                        inner_name in (f"{alias}.time", f"{alias}.time_ns")
                        for alias in ctx.time_module
                    ):
                        yield ctx.violation(
                            inner,
                            this,
                            "wall-clock time as a seed is nondeterministic; "
                            "derive the stream with repro.core.rng.derive_rng",
                        )


# --------------------------------------------------------------------------- #
# REPRO2xx — frequency-oracle contract
# --------------------------------------------------------------------------- #
def _oracle_subclasses(ctx: FileContext) -> Iterator[ast.ClassDef]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for base in node.bases:
            name = dotted_name(base)
            if name is not None and name.split(".")[-1] == "FrequencyOracle":
                yield node
                break


def _method_names(cls: ast.ClassDef) -> dict[str, ast.AST]:
    return {
        stmt.name: stmt
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _is_abstract(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in stmt.decorator_list:
                name = dotted_name(decorator)
                if name is not None and name.split(".")[-1] in (
                    "abstractmethod",
                    "abstractproperty",
                ):
                    return True
    return False


@rule("REPRO201", "oracle-final-override")
def check_oracle_final_override(ctx: FileContext) -> Iterator[Violation]:
    """A ``FrequencyOracle`` subclass overrides a final dispatch method.

    ``support_counts``/``attack_many``/``accumulator`` own the chunk-iterable
    guard on the base class; re-implementing them in a subclass can silently
    drop streaming support (and diverge from the ``@final`` annotations mypy
    enforces).  Implement the protected dense kernels instead.
    """
    if "FrequencyOracle" in ctx.defined_classes:
        return  # the defining module owns the final methods
    this = _rule("REPRO201")
    for cls in _oracle_subclasses(ctx):
        methods = _method_names(cls)
        for name in ORACLE_FINAL_METHODS:
            if name in methods:
                yield ctx.violation(
                    methods[name],
                    this,
                    f"{cls.name} overrides final FrequencyOracle.{name}(); "
                    f"implement the protected dense kernel instead "
                    f"({'/'.join(ORACLE_REQUIRED_KERNELS)})",
                )


@rule("REPRO202", "oracle-missing-kernel")
def check_oracle_missing_kernel(ctx: FileContext) -> Iterator[Violation]:
    """A concrete ``FrequencyOracle`` subclass skips a dense kernel.

    Concrete oracles implement ``_support_counts_dense`` and
    ``_attack_dense`` so the final base-class dispatch (chunk guard, packed
    reports) applies uniformly; relying on the O(n)-python ``attack`` loop
    fallback is a silent performance and contract hazard.  Abstract
    intermediate classes and test stubs are exempt.
    """
    if "FrequencyOracle" in ctx.defined_classes or ctx.is_tests:
        return
    this = _rule("REPRO202")
    for cls in _oracle_subclasses(ctx):
        if _is_abstract(cls):
            continue
        methods = _method_names(cls)
        for kernel in ORACLE_REQUIRED_KERNELS:
            if kernel not in methods:
                yield ctx.violation(
                    cls,
                    this,
                    f"{cls.name} does not implement {kernel}(); concrete "
                    "oracles must provide both protected dense kernels",
                )


# --------------------------------------------------------------------------- #
# REPRO3xx — cell-parameter completeness
# --------------------------------------------------------------------------- #
@rule("REPRO301", "missing-fidelity-param")
def check_missing_fidelity_param(ctx: FileContext) -> Iterator[Violation]:
    """A ``plan_*`` function drops a fidelity kwarg from its cell params.

    Flags that change row fidelity (``amortize_nk``, ``chunk_size``,
    ``packed``, ``redraw_attributes``) must be part of every planned cell's
    params dict — the cache key is a content hash of those params, so a
    dropped flag makes two different fidelities share one cache entry.
    The kwarg must appear as a params-dict key (literal or
    ``params["..."] = ...`` assignment) somewhere in the plan function.
    """
    this = _rule("REPRO301")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not node.name.startswith("plan_"):
            continue
        args = node.args
        accepted = {
            a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        }
        threaded = accepted.intersection(FIDELITY_KWARGS)
        if not threaded:
            continue
        keys: set[str] = set()
        for inner in ast.walk(node):
            if isinstance(inner, ast.Dict):
                for key in inner.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        keys.add(key.value)
            elif isinstance(inner, ast.Assign):
                for target in inner.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)
                    ):
                        keys.add(target.slice.value)
        for kwarg in sorted(threaded - keys):
            yield ctx.violation(
                node,
                this,
                f"{node.name}() accepts fidelity kwarg {kwarg!r} but never "
                "puts it in the GridCell params dict; caches would mix "
                "fidelities under one config hash",
            )


# --------------------------------------------------------------------------- #
# REPRO4xx — seam hygiene
# --------------------------------------------------------------------------- #
@rule("REPRO401", "direct-store-construction")
def check_direct_store_construction(ctx: FileContext) -> Iterator[Violation]:
    """A cell store is constructed outside ``CellStore.from_options``.

    ``CellStore.from_options`` is the one place the ``(directory, bounds,
    cache_backend)`` wiring lives; direct ``GridCache(...)`` /
    ``SQLiteCellStore(...)`` construction elsewhere lets parent and worker
    caches silently diverge.  The defining modules and tests are exempt;
    blessed factory classmethods (``from_options``, ``for_directory``) are
    not flagged.
    """
    if ctx.is_tests:
        return
    this = _rule("REPRO401")
    for call in _calls(ctx.tree):
        name = dotted_name(call.func)
        if name is None:
            continue
        leaf = name.split(".")[-1]
        if leaf in STORE_CLASSES and leaf not in ctx.defined_classes:
            yield ctx.violation(
                call,
                this,
                f"direct {leaf}(...) construction bypasses "
                "CellStore.from_options; build stores through the seam so "
                "backend/bounds wiring cannot diverge",
            )


@rule("REPRO402", "noncanonical-json-in-hash-path")
def check_noncanonical_json_in_hash_path(ctx: FileContext) -> Iterator[Violation]:
    """``json.dumps`` without ``sort_keys=True`` feeding a hash.

    Content hashes (cell config hashes, plan fingerprints) must be computed
    over *canonical* JSON — dict iteration order is an implementation detail,
    and an unsorted dump makes equal configurations hash differently across
    processes.  Any ``json.dumps`` inside a function that also uses
    ``hashlib`` must pass ``sort_keys=True``.
    """
    this = _rule("REPRO402")

    def is_dumps(call: ast.Call) -> bool:
        name = dotted_name(call.func)
        if name is None:
            return False
        return name in ctx.json_dumps or any(
            name == f"{alias}.dumps" for alias in ctx.json_module
        )

    def has_sorted_keys(call: ast.Call) -> bool:
        for kw in call.keywords:
            if kw.arg == "sort_keys":
                return isinstance(kw.value, ast.Constant) and kw.value.value is True
        return False

    def uses_hashlib(tree: ast.AST) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.Name) and node.id in ctx.hashlib_module:
                return True
        return False

    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not uses_hashlib(node):
            continue
        for call in _calls(node):
            if is_dumps(call) and not has_sorted_keys(call):
                yield ctx.violation(
                    call,
                    this,
                    "json.dumps in a hashing path must pass sort_keys=True "
                    "(canonical form), or equal configs hash differently",
                )


# --------------------------------------------------------------------------- #
# REPRO5xx — general determinism hazards
# --------------------------------------------------------------------------- #
@rule("REPRO501", "mutable-default-argument")
def check_mutable_default_argument(ctx: FileContext) -> Iterator[Violation]:
    """A function default is a mutable container.

    ``def f(x=[])`` shares one list across every call — state leaks between
    grid cells and repetitions, the exact class of bug the per-cell RNG
    derivation exists to prevent.  Use ``None`` plus an in-body default.
    """
    this = _rule("REPRO501")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray")
            )
            if mutable:
                yield ctx.violation(
                    default,
                    this,
                    "mutable default argument is shared across calls; "
                    "default to None and build the container in the body",
                )


@rule("REPRO502", "silent-exception-swallow")
def check_silent_exception_swallow(ctx: FileContext) -> Iterator[Violation]:
    """A broad exception handler silently swallows everything it catches.

    ``except Exception: pass`` (and the even broader bare ``except:``) is
    exactly what masks lost completions in a network executor — a failed
    heartbeat, a dropped row report, a torn cache write all vanish without a
    trace.  The project's documented degrade seams narrow the caught type
    (``except OSError``) or act on the failure (warn once, re-raise,
    requeue); a handler that catches ``Exception``/``BaseException`` and does
    *nothing* is flagged everywhere, tests included.  A genuinely intentional
    seam carries a ``# reprolint: disable=REPRO502`` comment explaining
    itself.
    """
    this = _rule("REPRO502")

    def is_broad(handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True  # bare except:
        types = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for node in types:
            name = dotted_name(node)
            if name is not None and name.split(".")[-1] in (
                "Exception",
                "BaseException",
            ):
                return True
        return False

    def is_silent(handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring or bare `...`
            return False
        return True

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not is_broad(node):
            continue
        if node.type is None:
            yield ctx.violation(
                node,
                this,
                "bare except: swallows SystemExit/KeyboardInterrupt too; "
                "catch the narrow exception type the seam degrades on",
            )
        elif is_silent(node):
            yield ctx.violation(
                node,
                this,
                "except Exception: pass silently discards the failure; "
                "narrow the type or handle it (warn/requeue/re-raise)",
            )


# --------------------------------------------------------------------------- #
# REPRO6xx — kernel-backend discipline
# --------------------------------------------------------------------------- #
#: Backend modules of ``repro.kernels`` that only the registry may import.
_KERNEL_BACKEND_MODULES = ("numpy_backend", "numba_backend")


def _names_kernel_backend_module(module_path: str) -> bool:
    """True when a dotted module path denotes a kernel backend module."""
    parts = module_path.split(".")
    if parts[-1] not in _KERNEL_BACKEND_MODULES:
        return False
    # absolute (repro.kernels.numpy_backend), relative through the package
    # (..kernels.numpy_backend -> "kernels.numpy_backend") or a bare sibling
    # import ("numpy_backend", only reachable from inside the package)
    return len(parts) == 1 or "kernels" in parts


@rule("REPRO601", "direct-kernel-backend-import")
def check_direct_kernel_backend_import(ctx: FileContext) -> Iterator[Violation]:
    """A module imports a repro.kernels backend instead of get_backend().

    The hot kernels are selected once per process (``--kernel-backend`` /
    ``REPRO_KERNEL_BACKEND``) and the chosen backend is recorded in artifact
    metadata; a module that imports ``repro.kernels.numpy_backend`` or
    ``numba_backend`` directly pins itself to one implementation behind the
    registry's back, so the recorded backend no longer describes the kernels
    that actually ran.  Production code must dispatch through
    ``repro.kernels.get_backend()``; only the registry package itself (and
    tests/benchmarks, which compare backends on purpose) may name a backend
    module.
    """
    this = _rule("REPRO601")
    if ctx.is_tests or "repro/kernels/" in ctx.display_path:
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _names_kernel_backend_module(alias.name):
                    yield ctx.violation(
                        node,
                        this,
                        f"import {alias.name} pins one kernel backend; "
                        "dispatch through repro.kernels.get_backend()",
                    )
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if _names_kernel_backend_module(module):
                yield ctx.violation(
                    node,
                    this,
                    f"from {'.' * node.level}{module} import ... reaches "
                    "into a kernel backend module; dispatch through "
                    "repro.kernels.get_backend()",
                )
                continue
            if module.split(".")[-1] == "kernels":
                for alias in node.names:
                    if alias.name in _KERNEL_BACKEND_MODULES:
                        yield ctx.violation(
                            node,
                            this,
                            f"from {'.' * node.level}{module} import "
                            f"{alias.name} pins one kernel backend; "
                            "dispatch through repro.kernels.get_backend()",
                        )


def _rule(code: str) -> Rule:
    """Look up a registered rule by code (used by the checkers themselves)."""
    for registered in RULES:
        if registered.code == code:
            return registered
    raise KeyError(code)
