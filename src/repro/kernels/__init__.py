"""Pluggable compiled-kernel backends for the three hot numeric kernels.

PRs 3 and 5 reduced fig-2/fig-3 wall-clock to three numeric kernels — the
re-identification distance block/update, the level-wise ``X^T W`` histogram
product of the GBDT grower, and the OLH support/attack kernels.  This package
puts those kernels behind one stable array contract (:class:`KernelBackend`)
with two interchangeable implementations:

* ``numpy`` — the pure-NumPy kernels extracted verbatim from the hot-path
  modules; byte-identical to the pre-registry code and always available.
* ``numba`` — ``@njit(nogil=True)`` loop kernels compiled at first call;
  only registered when :mod:`numba` is importable.

Selection happens once per process: ``set_backend(name)`` (driven by the
``--kernel-backend`` CLI flag) or the ``REPRO_KERNEL_BACKEND`` environment
variable, both accepting ``numpy`` / ``numba`` / ``auto``.  ``auto`` (the
default) silently falls back to NumPy when numba is missing; requesting
``numba`` explicitly without numba installed is an
:class:`~repro.exceptions.InvalidParameterError` — a quiet fallback there
would corrupt benchmark comparisons.

Hot-path modules must dispatch through :func:`get_backend` and never import
a backend module directly (enforced by reprolint rule REPRO601): the
registry is what keeps one process on one backend, so artifacts can record
which kernels produced them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields
from typing import Callable, Optional

from ..exceptions import InvalidParameterError

#: Environment variable consulted when no backend was selected explicitly.
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: Names accepted by :func:`set_backend` / ``--kernel-backend``.
KERNEL_BACKEND_CHOICES = ("numpy", "numba", "auto")


@dataclass(frozen=True)
class KernelBackend:
    """One backend's implementations of the three hot kernels.

    All functions share the array contracts of the NumPy reference
    implementations in :mod:`repro.kernels.numpy_backend` (shapes, dtypes
    and in-place semantics are documented there).  Integer-valued kernels
    (distances, OLH supports/selection) must agree exactly across backends;
    ``histogram_product`` may differ in float64 summation order only.
    """

    name: str
    distance_block: Callable[..., object]
    distance_update: Callable[..., object]
    histogram_product: Callable[..., object]
    olh_support: Callable[..., object]
    olh_attack_counts: Callable[..., object]
    olh_attack_select: Callable[..., object]

    def kernels(self) -> dict[str, Callable[..., object]]:
        """Kernel name -> callable mapping (bench/test introspection)."""
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "name"
        }


_active_backend: Optional[KernelBackend] = None


def numba_available() -> bool:
    """True when the numba JIT backend can be imported and registered."""
    try:
        from . import numba_backend  # noqa: F401
    except ImportError:
        return False
    return True


def available_backends() -> tuple[str, ...]:
    """Concrete backend names importable in this process (no ``auto``)."""
    names = ["numpy"]
    if numba_available():
        names.append("numba")
    return tuple(names)


def resolve_backend_name(name: str | None = None) -> str:
    """Resolve a requested backend name to a concrete one.

    ``None`` defers to ``REPRO_KERNEL_BACKEND``, and an unset/empty variable
    means ``auto``.  ``auto`` picks numba when importable, else numpy.
    Unknown names and an explicit ``numba`` request without numba installed
    raise :class:`InvalidParameterError`.
    """
    if name is None:
        name = os.environ.get(KERNEL_BACKEND_ENV, "").strip() or "auto"
    name = str(name).strip().lower()
    if name not in KERNEL_BACKEND_CHOICES:
        raise InvalidParameterError(
            f"unknown kernel backend {name!r}; choose one of "
            f"{', '.join(KERNEL_BACKEND_CHOICES)}"
        )
    if name == "auto":
        return "numba" if numba_available() else "numpy"
    if name == "numba" and not numba_available():
        raise InvalidParameterError(
            "kernel backend 'numba' was requested but numba is not importable "
            "in this environment; install numba or select --kernel-backend "
            "numpy (or auto, which falls back silently)"
        )
    return name


def _load_backend(name: str) -> KernelBackend:
    if name == "numpy":
        from . import numpy_backend

        return numpy_backend.BACKEND
    if name == "numba":
        from . import numba_backend

        return numba_backend.BACKEND
    raise InvalidParameterError(f"unknown kernel backend {name!r}")  # pragma: no cover


def set_backend(name: str | None = None) -> KernelBackend:
    """Select the process-wide kernel backend and return it.

    ``name`` follows :func:`resolve_backend_name` semantics; the returned
    (and subsequently :func:`get_backend`-served) backend is always a
    concrete one (``numpy`` or ``numba``), never ``auto``.
    """
    global _active_backend
    _active_backend = _load_backend(resolve_backend_name(name))
    return _active_backend


def get_backend() -> KernelBackend:
    """The active kernel backend, resolving env/auto selection on first use."""
    global _active_backend
    if _active_backend is None:
        _active_backend = _load_backend(resolve_backend_name(None))
    return _active_backend


def active_backend_name() -> str:
    """Name of the backend :func:`get_backend` serves (resolving lazily)."""
    return get_backend().name


__all__ = [
    "KERNEL_BACKEND_CHOICES",
    "KERNEL_BACKEND_ENV",
    "KernelBackend",
    "active_backend_name",
    "available_backends",
    "get_backend",
    "numba_available",
    "resolve_backend_name",
    "set_backend",
]
