"""Numba JIT kernel backend (optional; registered only when numba imports).

Loop-level reimplementations of the :mod:`repro.kernels.numpy_backend`
contracts, compiled with ``@njit(nogil=True, cache=True)``:

* ``nogil`` — the compiled kernels release the GIL, which is what makes the
  ``ThreadedExecutor`` profitable: grid cells run concurrently in one
  process with zero pickling of datasets or result rows.
* ``cache`` — compiled machine code persists across processes, so repeat
  benchmark runs do not pay the JIT warm-up twice.

All integer-valued kernels (distances, OLH supports/selection) are exact
integer arithmetic and therefore bitwise identical to the NumPy backend.
``histogram_product`` accumulates float64 in loop order (with zero-weight
skipping, which is where the speedup over the dense BLAS GEMM comes from on
sparse frontier rows), so it may differ from BLAS in the last ulp — the
parity suite compares it with a tight ``allclose``.
"""

from __future__ import annotations

import numba  # noqa: F401  (ImportError here gates the whole backend)
import numpy as np
from numba import njit

from . import KernelBackend


@njit(cache=True, nogil=True)
def _distance_block(rows, background, attributes, unknown, out):
    n = rows.shape[0]
    m = background.shape[0]
    c = attributes.shape[0]
    for i in range(n):
        for column in range(c):
            value = rows[i, attributes[column]]
            if value == unknown:
                continue
            for j in range(m):
                if value != background[j, column]:
                    out[i, j] += 1
    return out


@njit(cache=True, nogil=True)
def _distance_update(distances, rows, old_values, new_values, background_column, unknown):
    m = background_column.shape[0]
    for idx in range(rows.shape[0]):
        row = rows[idx]
        new = new_values[idx]
        old = old_values[idx]
        for j in range(m):
            delta = 0
            if new != unknown and new != background_column[j]:
                delta += 1
            if old != unknown and old != background_column[j]:
                delta -= 1
            if delta != 0:
                distances[row, j] += delta


@njit(cache=True, nogil=True)
def _histogram_product(weights_t, features):
    slots = weights_t.shape[0]
    n = weights_t.shape[1]
    n_features = features.shape[1]
    out = np.zeros((slots, n_features), dtype=np.float64)
    for slot in range(slots):
        for i in range(n):
            weight = weights_t[slot, i]
            if weight != 0.0:
                for f in range(n_features):
                    out[slot, f] += weight * features[i, f]
    return out


@njit(cache=True, nogil=True)
def _olh_support(reports, k, g, prime):
    counts = np.zeros(k, dtype=np.float64)
    for i in range(reports.shape[0]):
        a = reports[i, 0]
        b = reports[i, 1]
        y = reports[i, 2]
        for v in range(k):
            if ((a * v + b) % prime) % g == y:
                counts[v] += 1.0
    return counts


@njit(cache=True, nogil=True)
def _olh_attack_counts(reports, k, g, prime):
    counts = np.zeros(reports.shape[0], dtype=np.int64)
    for i in range(reports.shape[0]):
        a = reports[i, 0]
        b = reports[i, 1]
        y = reports[i, 2]
        for v in range(k):
            if ((a * v + b) % prime) % g == y:
                counts[i] += 1
    return counts


@njit(cache=True, nogil=True)
def _olh_attack_select(reports, k, g, prime, rows, ranks):
    out = np.zeros(rows.shape[0], dtype=np.int64)
    for j in range(rows.shape[0]):
        i = rows[j]
        a = reports[i, 0]
        b = reports[i, 1]
        y = reports[i, 2]
        target = ranks[j]
        seen = 0
        for v in range(k):
            if ((a * v + b) % prime) % g == y:
                if seen == target:
                    out[j] = v
                    break
                seen += 1
    return out


def distance_block(rows, background, attributes, unknown, out):
    return _distance_block(rows, background, attributes, int(unknown), out)


def distance_update(distances, rows, old_values, new_values, background_column, unknown):
    _distance_update(
        distances, rows, old_values, new_values, background_column, int(unknown)
    )


def histogram_product(weights_t, features):
    return _histogram_product(weights_t, features)


def olh_support(reports, k, g, prime):
    return _olh_support(reports, int(k), int(g), int(prime))


def olh_attack_counts(reports, k, g, prime):
    return _olh_attack_counts(reports, int(k), int(g), int(prime))


def olh_attack_select(reports, k, g, prime, rows, ranks):
    return _olh_attack_select(reports, int(k), int(g), int(prime), rows, ranks)


BACKEND = KernelBackend(
    name="numba",
    distance_block=distance_block,
    distance_update=distance_update,
    histogram_product=histogram_product,
    olh_support=olh_support,
    olh_attack_counts=olh_attack_counts,
    olh_attack_select=olh_attack_select,
)
