"""Pure-NumPy kernel backend (the default; always available).

These are the hot-path kernels extracted verbatim from
``attacks/reidentification.py``, ``ml/tree.py`` and ``protocols/olh.py`` —
the array contracts documented here are THE backend contract; the numba
backend reimplements exactly these semantics.  Integer-valued kernels are
bitwise reproducible across backends; :func:`histogram_product` is the one
float kernel, where backends may differ in summation order only.
"""

from __future__ import annotations

import numpy as np

from . import KernelBackend


def distance_block(
    rows: np.ndarray,
    background: np.ndarray,
    attributes: np.ndarray,
    unknown: int,
    out: np.ndarray,
) -> np.ndarray:
    """Accumulate profile/record disagreement counts into ``out``.

    Parameters
    ----------
    rows:
        ``(n, d)`` int64 inferred-profile rows (``unknown`` marks cells not
        inferred yet).
    background:
        ``(m, c)`` int64 background-knowledge submatrix.
    attributes:
        ``(c,)`` int64 global attribute index of each background column.
    unknown:
        Sentinel for not-inferred profile cells; they contribute no
        mismatch.
    out:
        ``(n, m)`` integer matrix the counts are **added** into (callers
        pass zeros for a fresh computation; the dtype is the caller's
        choice).  Returned for convenience.
    """
    for column in range(attributes.shape[0]):
        inferred = rows[:, attributes[column]]
        known = inferred != unknown
        if not known.any():
            continue
        mismatch = inferred[:, None] != background[None, :, column]
        out += (mismatch & known[:, None]).astype(out.dtype)
    return out


def distance_update(
    distances: np.ndarray,
    rows: np.ndarray,
    old_values: np.ndarray,
    new_values: np.ndarray,
    background_column: np.ndarray,
    unknown: int,
) -> None:
    """Fold one attribute's rewritten cells into a distance matrix in place.

    For block-local profile rows ``rows`` (``(w,)`` int64, no duplicates)
    whose cell changed from ``old_values`` to ``new_values`` on the
    attribute whose background column is ``background_column`` (``(m,)``
    int64), add the new value's mismatch column and subtract the old one.
    ``unknown`` values (a cell not inferred before, or reverted) contribute
    nothing on their side of the update.  ``distances`` is ``(block, m)``
    integer, updated in place.
    """
    update = np.zeros((rows.size, background_column.size), dtype=distances.dtype)
    known_after = new_values != unknown
    if known_after.any():
        update[known_after] = (
            new_values[known_after, None] != background_column[None, :]
        )
    known_before = old_values != unknown
    if known_before.any():
        update[known_before] -= (
            old_values[known_before, None] != background_column[None, :]
        )
    distances[rows] += update


def histogram_product(weights_t: np.ndarray, features: np.ndarray) -> np.ndarray:
    """Per-slot feature histograms: the level-wise ``W^T X`` product.

    ``weights_t`` is ``(slots, n)`` float64 scattered sample weights (one
    row per live tree node at this level, mostly zero) and ``features`` is
    the ``(n, F)`` float64 binary bin-indicator matrix; returns the
    ``(slots, F)`` float64 histogram matrix ``weights_t @ features``.
    """
    return weights_t @ features


def olh_support(
    reports: np.ndarray, k: int, g: int, prime: int
) -> np.ndarray:
    """Support counts of one OLH report block over the domain ``[0, k)``.

    ``reports`` is ``(m, 3)`` int64 rows ``(a, b, y)``; report ``i``
    supports value ``v`` iff ``((a_i v + b_i) mod prime) mod g == y_i``.
    Returns the ``(k,)`` float64 vector of support counts.
    """
    a, b, perturbed = reports[:, 0], reports[:, 1], reports[:, 2]
    domain = np.arange(k, dtype=np.int64)
    hashed_all = ((a[:, None] * domain[None, :] + b[:, None]) % prime) % g
    supports = hashed_all == perturbed[:, None]
    return supports.sum(axis=0).astype(float)


def olh_attack_counts(
    reports: np.ndarray, k: int, g: int, prime: int
) -> np.ndarray:
    """Per-report candidate-set sizes: ``counts[i] = |{v : H_i(v) == y_i}|``.

    Same support relation as :func:`olh_support`, summed along the domain
    axis instead; returns ``(m,)`` int64.
    """
    a, b, perturbed = reports[:, 0], reports[:, 1], reports[:, 2]
    domain = np.arange(k, dtype=np.int64)
    hashed_all = ((a[:, None] * domain[None, :] + b[:, None]) % prime) % g
    supports = hashed_all == perturbed[:, None]
    return supports.sum(axis=1).astype(np.int64)


def olh_attack_select(
    reports: np.ndarray,
    k: int,
    g: int,
    prime: int,
    rows: np.ndarray,
    ranks: np.ndarray,
) -> np.ndarray:
    """Rank-indexed candidate selection for the OLH attack.

    For each report index in ``rows`` (all with non-empty candidate sets),
    return the ``ranks[j]``-th (0-based, ``0 <= ranks[j] < counts``) domain
    value supported by that report, in increasing value order — the uniform
    candidate the attack RNG already committed to via ``ranks``.  Returns
    ``(len(rows),)`` int64 guesses.
    """
    a = reports[rows, 0]
    b = reports[rows, 1]
    perturbed = reports[rows, 2]
    domain = np.arange(k, dtype=np.int64)
    hashed_all = ((a[:, None] * domain[None, :] + b[:, None]) % prime) % g
    supports = hashed_all == perturbed[:, None]
    cumulative = np.cumsum(supports, axis=1)
    return np.argmax(cumulative > ranks[:, None], axis=1).astype(np.int64)


BACKEND = KernelBackend(
    name="numpy",
    distance_block=distance_block,
    distance_update=distance_update,
    histogram_product=histogram_product,
    olh_support=olh_support,
    olh_attack_counts=olh_attack_counts,
    olh_attack_select=olh_attack_select,
)
