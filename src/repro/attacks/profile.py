"""Multi-collection profile building (Secs. 3.2.2-3.2.3 and 4.2/4.4).

Across ``#surveys`` data collections, an attacker observing the pairs
``<sampled attribute, LDP report>`` (SMP) — or the full RS+FD tuples — can
accumulate a partial or complete *inferred profile* for every user.  This
module implements that accumulation for both solutions and for the two
privacy metrics across users:

* **uniform** — users always sample a not-yet-reported attribute (sampling
  without replacement across surveys), maximizing leakage;
* **non-uniform** — users sample with replacement and memoize the previous
  report when an attribute repeats, which slows down profile growth.

The result keeps, for each survey, the **delta** of cells actually written
during that survey (``(rows, attributes, values)`` triples) instead of a
dense copy of the cumulative profile.  Snapshots after any number of surveys
are reconstructed on demand from the deltas (byte-identical to the dense
copies the builders used to keep), so the re-identification accuracy can be
evaluated for ``#surveys = 2..S`` without retaining ``S`` dense ``(n, d)``
matrices — a large memory win at ACS scale — and the re-identification
engine can update its distance matrices incrementally from the same deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..core.dataset import TabularDataset
from ..core.domain import Domain
from ..core.rng import RngLike, ensure_rng
from ..exceptions import InvalidParameterError
from ..multidim.rsfd import RSFD
from ..multidim.smp import SMP
from ..protocols.streaming import PackedBits
from ..privacy.pie import pie_budget_for_attribute
from ..protocols.registry import make_protocol
from .attribute_inference import AttributeInferenceAttack, ClassifierFactory

#: Smallest LDP budget used when the PIE model asks for an (almost) zero one.
_MIN_EPSILON = 1e-3

#: Value marking "attribute not yet inferred" in profile matrices.
UNKNOWN = -1


@dataclass(frozen=True)
class Survey:
    """One data collection: the subset of attributes being surveyed."""

    attributes: tuple[int, ...]

    def __post_init__(self) -> None:
        attrs = tuple(int(a) for a in self.attributes)
        if len(attrs) == 0 or len(set(attrs)) != len(attrs):
            raise InvalidParameterError("a survey needs a non-empty set of distinct attributes")
        object.__setattr__(self, "attributes", attrs)

    @property
    def d(self) -> int:
        """Number of attributes in this survey."""
        return len(self.attributes)


def plan_surveys(
    d: int,
    num_surveys: int,
    rng: RngLike = None,
    min_fraction: float = 0.5,
) -> list[Survey]:
    """Draw the experiment's survey plan.

    Each survey selects ``d_sv = Uniform(ceil(min_fraction*d), d)`` attributes
    at random from the ``d`` available ones, mirroring Sec. 4.2.
    """
    if d < 2:
        raise InvalidParameterError("d must be >= 2")
    if num_surveys < 1:
        raise InvalidParameterError("num_surveys must be >= 1")
    if not 0.0 < min_fraction <= 1.0:
        raise InvalidParameterError("min_fraction must be in (0, 1]")
    generator = ensure_rng(rng)
    lower = max(2, int(np.ceil(min_fraction * d)))
    surveys = []
    for _ in range(num_surveys):
        size = int(generator.integers(lower, d + 1))
        attributes = generator.choice(d, size=size, replace=False)
        surveys.append(Survey(tuple(sorted(int(a) for a in attributes))))
    return surveys


@dataclass(frozen=True)
class SurveyDelta:
    """Cells written to the inferred profile during one survey.

    The three arrays are parallel: cell ``(rows[i], attributes[i])`` was set
    to ``values[i]``.  Entries are kept in write order; a survey writes each
    cell at most once (SMP users report one fresh attribute per survey,
    RS+FD assigns one predicted attribute per user), but later surveys may
    rewrite a cell an earlier survey already filled, which replaying the
    deltas in order reproduces exactly.
    """

    rows: np.ndarray
    attributes: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        rows = np.ascontiguousarray(self.rows, dtype=np.int64)
        attributes = np.ascontiguousarray(self.attributes, dtype=np.int64)
        values = np.ascontiguousarray(self.values, dtype=np.int64)
        if not rows.shape == attributes.shape == values.shape or rows.ndim != 1:
            raise InvalidParameterError(
                "rows, attributes and values must be equally sized 1-D arrays"
            )
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "attributes", attributes)
        object.__setattr__(self, "values", values)

    @property
    def size(self) -> int:
        """Number of cells written in this survey."""
        return int(self.rows.size)

    def apply(self, profile: np.ndarray) -> np.ndarray:
        """Write this delta's cells into ``profile`` (in place) and return it."""
        if self.size:
            profile[self.rows, self.attributes] = self.values
        return profile


class DeltaRecorder:
    """Accumulates profile writes into per-survey :class:`SurveyDelta` records.

    The recorder owns the dense working profile the builders update, so the
    recorded deltas are — by construction — exactly the cells whose dense
    values changed hands; ``commit_survey`` seals the pending writes into the
    next survey's delta.
    """

    def __init__(self, n: int, d: int) -> None:
        self.profile = np.full((int(n), int(d)), UNKNOWN, dtype=np.int64)
        self.deltas: list[SurveyDelta] = []
        self._pending: list[tuple[np.ndarray, int, np.ndarray]] = []

    def write(self, rows: np.ndarray, attribute: int, values: np.ndarray) -> None:
        """Record that ``profile[rows, attribute] = values`` this survey."""
        rows = np.asarray(rows, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if rows.size == 0:
            return
        attribute = int(attribute)
        self.profile[rows, attribute] = values
        self._pending.append((rows, attribute, values))

    def commit_survey(self) -> SurveyDelta:
        """Seal the writes since the previous commit into one delta."""
        if self._pending:
            rows = np.concatenate([entry[0] for entry in self._pending])
            attributes = np.concatenate(
                [np.full(entry[0].size, entry[1], dtype=np.int64) for entry in self._pending]
            )
            values = np.concatenate([entry[2] for entry in self._pending])
            self._pending.clear()
        else:
            rows = attributes = values = np.empty(0, dtype=np.int64)
        delta = SurveyDelta(rows=rows, attributes=attributes, values=values)
        self.deltas.append(delta)
        return delta


class SnapshotView(Sequence):
    """Lazy sequence of cumulative profile snapshots, one per survey.

    ``view[i]`` reconstructs the dense ``(n, d)`` profile after survey
    ``i + 1`` by replaying deltas ``0..i`` onto an all-:data:`UNKNOWN`
    matrix; iteration replays each delta once and yields an independent copy
    per survey.  Reconstruction is byte-identical to the dense per-survey
    copies the builders historically kept, without retaining ``S`` of them.
    """

    def __init__(self, result: "ProfilingResult") -> None:
        self._result = result

    def __len__(self) -> int:
        return len(self._result.deltas)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        index = int(index)
        length = len(self)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError(f"snapshot index {index} out of range for {length} surveys")
        profile = np.full(self._result.shape, UNKNOWN, dtype=np.int64)
        for delta in self._result.deltas[: index + 1]:
            delta.apply(profile)
        return profile

    def __iter__(self) -> Iterator[np.ndarray]:
        profile = np.full(self._result.shape, UNKNOWN, dtype=np.int64)
        for delta in self._result.deltas:
            delta.apply(profile)
            yield profile.copy()


@dataclass
class ProfilingResult:
    """Inferred profiles accumulated over the surveys (delta-backed).

    Attributes
    ----------
    deltas:
        One :class:`SurveyDelta` per survey holding the cells written during
        that survey; cumulative snapshots are reconstructed from them on
        demand (see :attr:`snapshots`) instead of being stored densely.
    shape:
        ``(n, d)`` shape of the dense profile matrices.
    surveys:
        The survey plan that generated the deltas.
    metric:
        ``"uniform"`` or ``"non-uniform"``.
    """

    deltas: list[SurveyDelta]
    shape: tuple[int, int]
    surveys: list[Survey]
    metric: str
    extra: dict = field(default_factory=dict)

    @classmethod
    def from_snapshots(
        cls,
        snapshots: Sequence[np.ndarray],
        surveys: list[Survey],
        metric: str,
        extra: dict | None = None,
    ) -> "ProfilingResult":
        """Build a delta-backed result by diffing dense cumulative snapshots."""
        if not snapshots:
            raise InvalidParameterError("at least one snapshot is required")
        previous = np.full_like(np.asarray(snapshots[0], dtype=np.int64), UNKNOWN)
        deltas = []
        for snapshot in snapshots:
            snapshot = np.asarray(snapshot, dtype=np.int64)
            if snapshot.shape != previous.shape:
                raise InvalidParameterError("snapshots must all share one shape")
            rows, attributes = np.nonzero(snapshot != previous)
            deltas.append(
                SurveyDelta(rows=rows, attributes=attributes, values=snapshot[rows, attributes])
            )
            previous = snapshot
        return cls(
            deltas=deltas,
            shape=tuple(int(s) for s in previous.shape),
            surveys=surveys,
            metric=metric,
            extra=dict(extra or {}),
        )

    @property
    def snapshots(self) -> SnapshotView:
        """Lazy per-survey cumulative snapshots (reconstructed on demand)."""
        return SnapshotView(self)

    @property
    def final_profile(self) -> np.ndarray:
        """Profile after the last survey."""
        return self.snapshots[-1]

    def known_counts(self, survey_index: int = -1) -> np.ndarray:
        """Number of inferred attributes per user after ``survey_index``."""
        return (self.snapshots[survey_index] != UNKNOWN).sum(axis=1)


def _sample_survey_attributes(
    survey: Survey,
    reported: np.ndarray,
    metric: str,
    rng: np.random.Generator,
) -> np.ndarray:
    """Pick, for every user, the attribute sampled in this survey.

    ``reported`` is the ``(n, d)`` boolean matrix of attributes each user has
    already reported in previous surveys.
    """
    n = reported.shape[0]
    columns = np.asarray(survey.attributes, dtype=np.int64)
    if metric == "non-uniform":
        picks = rng.integers(0, columns.size, size=n)
        return columns[picks]
    # uniform metric: prefer attributes not reported yet; fall back to any
    # survey attribute when the user has exhausted them all.
    available = ~reported[:, columns]
    counts = available.sum(axis=1)
    exhausted = counts == 0
    if exhausted.any():
        available[exhausted] = True
        counts = available.sum(axis=1)
    ranks = (rng.random(n) * counts).astype(np.int64)
    cumulative = np.cumsum(available, axis=1)
    picks = np.argmax(cumulative > ranks[:, None], axis=1)
    return columns[picks]


def _normalize_metric(metric: str) -> str:
    metric = metric.strip().lower().replace("_", "-")
    if metric in ("uniform",):
        return "uniform"
    if metric in ("non-uniform", "nonuniform"):
        return "non-uniform"
    raise InvalidParameterError(f"metric must be 'uniform' or 'non-uniform', got {metric!r}")


# --------------------------------------------------------------------------- #
# SMP profiling
# --------------------------------------------------------------------------- #
def build_profiles_smp(
    dataset: TabularDataset,
    surveys: Sequence[Survey],
    protocol: str,
    epsilon: float,
    metric: str = "uniform",
    rng: RngLike = None,
    pie_beta: float | None = None,
) -> ProfilingResult:
    """Accumulate inferred profiles from SMP collections over ``surveys``.

    In every survey each user samples one of the survey's attributes (per the
    chosen privacy metric), reports it with the full budget ``epsilon``, and
    the attacker applies the plausible-deniability attack to the pair
    ``<sampled attribute, report>``.

    When ``pie_beta`` is given, the (U, alpha)-PIE relaxation of Appendix C
    replaces the ``epsilon``-LDP metric: attributes with small domains are
    reported in the clear and the others use the budget derived from the
    target Bayes error ``beta``.
    """
    metric = _normalize_metric(metric)
    generator = ensure_rng(rng)
    n, d = dataset.n, dataset.d
    recorder = DeltaRecorder(n, d)
    reported = np.zeros((n, d), dtype=bool)
    # protocol objects are stateless apart from the shared generator, so one
    # oracle per (k, epsilon) serves every survey and attribute
    oracle_cache: dict[tuple[int, float], object] = {}

    def cached_oracle(k: int, budget_epsilon: float):
        key = (k, budget_epsilon)
        if key not in oracle_cache:
            oracle_cache[key] = make_protocol(protocol, k, budget_epsilon, rng=generator)
        return oracle_cache[key]

    for survey in surveys:
        sampled = _sample_survey_attributes(survey, reported, metric, generator)
        for attribute in survey.attributes:
            rows = np.flatnonzero(sampled == attribute)
            if rows.size == 0:
                continue
            already = reported[rows, attribute]
            fresh_rows = rows[~already]
            # memoization: users repeating an attribute resend the previous
            # report, so the attacker learns nothing new for them
            if fresh_rows.size == 0:
                continue
            true_values = dataset.column(attribute)[fresh_rows]
            k = dataset.domain.size_of(attribute)
            if pie_beta is not None:
                budget = pie_budget_for_attribute(pie_beta, n, k)
                if budget.report_in_clear:
                    guesses = true_values.copy()
                else:
                    oracle = cached_oracle(k, max(budget.epsilon, _MIN_EPSILON))
                    guesses = oracle.attack_many(oracle.randomize_many(true_values))
            else:
                oracle = cached_oracle(k, epsilon)
                guesses = oracle.attack_many(oracle.randomize_many(true_values))
            recorder.write(fresh_rows, attribute, guesses)
            reported[fresh_rows, attribute] = True
        recorder.commit_survey()

    return ProfilingResult(
        deltas=recorder.deltas,
        shape=(n, d),
        surveys=list(surveys),
        metric=metric,
        extra={"solution": "SMP", "protocol": protocol, "epsilon": epsilon, "pie_beta": pie_beta},
    )


# --------------------------------------------------------------------------- #
# RS+FD profiling (attribute inference + value inference, with chained errors)
# --------------------------------------------------------------------------- #
def build_profiles_rsfd(
    dataset: TabularDataset,
    surveys: Sequence[Survey],
    epsilon: float,
    variant: str = "grr",
    ue_kind: str = "OUE",
    metric: str = "uniform",
    synthetic_factor: float = 1.0,
    classifier_factory: ClassifierFactory | None = None,
    amortize_nk: bool = True,
    rng: RngLike = None,
) -> ProfilingResult:
    """Accumulate inferred profiles from RS+FD collections over ``surveys``.

    For every survey the attacker (i) predicts each user's sampled attribute
    with the NK attribute-inference attack and (ii) applies the
    plausible-deniability attack to the report of the *predicted* attribute.
    Both predictions can be wrong, producing the chained errors that make
    RS+FD far more resistant to re-identification than SMP (Sec. 4.4).

    ``amortize_nk`` (default on) trains the NK sampled-attribute classifier
    once per *distinct survey attribute set* and reuses it for later surveys
    over the same set: the synthetic training profiles are drawn from the
    estimated marginals of the same sub-population either way, so the reused
    classifier is statistically equivalent to a freshly trained one while
    skipping the synthetic collection and classifier fit entirely.  Plans
    whose surveys never repeat an attribute set consume the random stream
    identically under both settings, so their profiles are byte-identical;
    ``amortize_nk=False`` restores the strict per-survey training of the
    sequential formulation everywhere.
    """
    metric = _normalize_metric(metric)
    generator = ensure_rng(rng)
    n, d = dataset.n, dataset.d
    recorder = DeltaRecorder(n, d)
    reported = np.zeros((n, d), dtype=bool)
    # one trained NK classifier per distinct survey attribute set
    nk_classifiers: dict[tuple[int, ...], object] = {}
    nk_accuracy: list[float] = []
    nk_trained: list[bool] = []

    for survey in surveys:
        columns = list(survey.attributes)
        sub_dataset = dataset.project(columns)
        sampled_global = _sample_survey_attributes(survey, reported, metric, generator)
        # vectorized global→local attribute renumbering (no per-user loop)
        local_of_global = np.full(d, -1, dtype=np.int64)
        local_of_global[np.asarray(columns, dtype=np.int64)] = np.arange(len(columns))
        sampled_local = local_of_global[sampled_global]
        if sampled_local.size and sampled_local.min() < 0:
            raise InvalidParameterError(
                "sampled attributes outside the survey's attribute set"
            )
        reported[np.arange(n), sampled_global] = True

        solution = RSFD(
            sub_dataset.domain, epsilon, variant=variant, ue_kind=ue_kind, rng=generator
        )
        reports = solution.collect(sub_dataset, sampled=sampled_local)

        attack = AttributeInferenceAttack(
            solution, classifier_factory=classifier_factory, rng=generator
        )
        classifier = nk_classifiers.get(survey.attributes) if amortize_nk else None
        nk_trained.append(classifier is None)
        if classifier is None:
            classifier = attack.train_sampled_attribute_classifier(
                reports, synthetic_factor=synthetic_factor
            )
            if amortize_nk:
                nk_classifiers[survey.attributes] = classifier
        predicted_local = attack.predict_sampled_attribute(reports, classifier=classifier)
        nk_accuracy.append(float(np.mean(predicted_local == sampled_local)))

        # infer the value of the predicted attribute from its (LDP or fake) report
        for local_index, attribute in enumerate(columns):
            rows = np.flatnonzero(predicted_local == local_index)
            if rows.size == 0:
                continue
            randomizer = solution._randomizer(local_index)
            column_reports = reports.per_attribute[local_index]
            # PackedBits supports row selection natively; dense columns are
            # converted once before slicing
            if not isinstance(column_reports, PackedBits):
                column_reports = np.asarray(column_reports)
            guesses = randomizer.attack_many(column_reports[rows])
            recorder.write(rows, attribute, guesses)
        recorder.commit_survey()

    return ProfilingResult(
        deltas=recorder.deltas,
        shape=(n, d),
        surveys=list(surveys),
        metric=metric,
        extra={
            "solution": "RS+FD",
            "variant": variant,
            "ue_kind": ue_kind,
            "epsilon": epsilon,
            "synthetic_factor": synthetic_factor,
            # per-survey NK diagnostics: sampled-attribute prediction accuracy
            # and whether a classifier was trained (False = amortized reuse)
            "nk_accuracy": nk_accuracy,
            "nk_trained": nk_trained,
        },
    )
