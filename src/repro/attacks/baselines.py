"""Random-guess baselines for the attacks.

Every attack in the paper is compared against the corresponding
uninformed-adversary baseline:

* single-report value inference → a uniform guess over the domain (``1/k``);
* attribute inference on RS+FD → a uniform guess over the attributes
  (``1/d``);
* top-k re-identification → ``top_k / n`` (k guesses among ``n`` identities).
"""

from __future__ import annotations

import numpy as np

from ..core.rng import RngLike, ensure_rng
from ..exceptions import InvalidParameterError


def random_value_baseline(k: int) -> float:
    """Expected accuracy of guessing a value uniformly at random: ``1/k``."""
    if k < 2:
        raise InvalidParameterError("k must be >= 2")
    return 1.0 / k


def random_attribute_baseline(d: int) -> float:
    """Expected AIF-ACC of guessing the sampled attribute at random: ``1/d``."""
    if d < 2:
        raise InvalidParameterError("d must be >= 2")
    return 1.0 / d


def random_reidentification_baseline(n: int, top_k: int = 1) -> float:
    """Expected RID-ACC of ``top_k`` random guesses without replacement."""
    if n < 1:
        raise InvalidParameterError("n must be >= 1")
    if top_k < 1:
        raise InvalidParameterError("top_k must be >= 1")
    return min(1.0, top_k / n)


def empirical_random_attribute_guess(
    true_attributes: np.ndarray, d: int, rng: RngLike = None
) -> float:
    """Accuracy actually achieved by uniform random attribute guesses."""
    true_attributes = np.asarray(true_attributes, dtype=np.int64)
    if true_attributes.size == 0:
        raise InvalidParameterError("true_attributes must not be empty")
    generator = ensure_rng(rng)
    guesses = generator.integers(0, d, size=true_attributes.size)
    return float(np.mean(guesses == true_attributes))


def empirical_random_reidentification(
    n: int, top_k: int = 1, rng: RngLike = None
) -> float:
    """Accuracy actually achieved by top-k random identity guesses.

    For each user the attacker draws ``k = min(top_k, n)`` distinct
    identities uniformly at random; the user is hit when their own identity
    is among them, which happens with probability exactly ``k / n``,
    independently across users.  The simulation therefore draws the hit
    indicators directly (one Bernoulli(``k/n``) per user) instead of
    materializing ``n`` candidate sets — same distribution, array-at-a-time.
    """
    if n < 1 or top_k < 1:
        raise InvalidParameterError("n and top_k must be >= 1")
    generator = ensure_rng(rng)
    k = min(top_k, n)
    hits = int(np.count_nonzero(generator.random(n) < k / n))
    return hits / n
