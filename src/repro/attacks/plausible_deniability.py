"""Plausible-deniability attacks on single LDP reports (Sec. 3.2.1).

Every LDP protocol reports the user's true value (or bit) with a higher
probability than any other value, so an attacker observing a single report
can guess the true value better than at random.  This module exposes

* the per-protocol single-report attack (delegating to each oracle's
  ``attack`` method) and its empirical accuracy, and
* the analytical expectations of Sec. 3.2.1 together with the
  multi-collection products of Eqs. (4) and (5).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.rng import RngLike, ensure_rng
from ..exceptions import InvalidParameterError
from ..protocols.analysis import (
    attacker_accuracy,
    profiling_accuracy_non_uniform,
    profiling_accuracy_uniform,
)
from ..protocols.base import empirical_attack_accuracy
from ..protocols.registry import make_protocol


def single_report_attack_accuracy(
    protocol: str,
    epsilon: float,
    values: np.ndarray,
    rng: RngLike = None,
    k: int | None = None,
) -> float:
    """Empirical attacker accuracy of the randomize→attack pipeline.

    Parameters
    ----------
    protocol:
        Frequency-oracle name (``"GRR"``, ``"OLH"``, ``"SS"``, ``"SUE"``,
        ``"OUE"``).
    epsilon:
        Privacy budget of each report.
    values:
        Users' true values (integer codes).
    rng:
        Seed or generator.
    k:
        Domain size; defaults to ``max(values) + 1``.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0:
        raise InvalidParameterError("values must not be empty")
    domain_size = int(values.max()) + 1 if k is None else int(k)
    oracle = make_protocol(protocol, domain_size, epsilon, rng=ensure_rng(rng))
    return empirical_attack_accuracy(oracle, values)


def expected_single_report_accuracy(protocol: str, epsilon: float, k: int) -> float:
    """Analytical expectation of the single-report attack (Sec. 3.2.1)."""
    return attacker_accuracy(protocol, epsilon, k)


def expected_profiling_accuracy(
    protocol: str,
    epsilon: float,
    sizes: Sequence[int],
    metric: str = "uniform",
) -> float:
    """Expected accuracy of profiling a user on all ``d`` attributes.

    ``metric`` selects the privacy metric across users: ``"uniform"``
    (Eq. 4, sampling without replacement) or ``"non-uniform"`` (Eq. 5,
    sampling with replacement + memoization).
    """
    metric = metric.lower().replace("_", "-")
    if metric == "uniform":
        return profiling_accuracy_uniform(protocol, epsilon, sizes)
    if metric in ("non-uniform", "nonuniform"):
        return profiling_accuracy_non_uniform(protocol, epsilon, sizes)
    raise InvalidParameterError(
        f"metric must be 'uniform' or 'non-uniform', got {metric!r}"
    )


def profiling_accuracy_curve(
    protocol: str,
    epsilons: Sequence[float],
    sizes: Sequence[int],
    metric: str = "uniform",
) -> np.ndarray:
    """Vector of expected profiling accuracies over a grid of budgets.

    This is exactly what Fig. 1 plots for ``d = 3``, ``k = [74, 7, 16]``.
    """
    return np.asarray(
        [expected_profiling_accuracy(protocol, eps, sizes, metric) for eps in epsilons]
    )
