"""Privacy attacks against LDP multidimensional collection (the paper's core)."""

from .attribute_inference import (
    AttributeInferenceAttack,
    AttributeInferenceResult,
    default_classifier_factory,
)
from .baselines import (
    empirical_random_attribute_guess,
    empirical_random_reidentification,
    random_attribute_baseline,
    random_reidentification_baseline,
    random_value_baseline,
)
from .plausible_deniability import (
    expected_profiling_accuracy,
    expected_single_report_accuracy,
    profiling_accuracy_curve,
    single_report_attack_accuracy,
)
from .profile import (
    UNKNOWN,
    DeltaRecorder,
    ProfilingResult,
    Survey,
    SurveyDelta,
    build_profiles_rsfd,
    build_profiles_smp,
    plan_surveys,
)
from .reidentification import (
    ReidentificationAttack,
    ReidentificationResult,
    count_topk_hits,
    match_distances,
    top_k_candidates,
)
from .reidentification_reference import ReferenceReidentificationAttack

__all__ = [
    "single_report_attack_accuracy",
    "expected_single_report_accuracy",
    "expected_profiling_accuracy",
    "profiling_accuracy_curve",
    "Survey",
    "SurveyDelta",
    "DeltaRecorder",
    "plan_surveys",
    "ProfilingResult",
    "UNKNOWN",
    "build_profiles_smp",
    "build_profiles_rsfd",
    "ReidentificationAttack",
    "ReferenceReidentificationAttack",
    "ReidentificationResult",
    "count_topk_hits",
    "match_distances",
    "top_k_candidates",
    "AttributeInferenceAttack",
    "AttributeInferenceResult",
    "default_classifier_factory",
    "random_value_baseline",
    "random_attribute_baseline",
    "random_reidentification_baseline",
    "empirical_random_attribute_guess",
    "empirical_random_reidentification",
]
