"""Re-identification attacks (Sec. 3.2.4).

Once the attacker holds an inferred profile ``y_i`` for every user (built by
:mod:`repro.attacks.profile`), the re-identification attack matches it
against a background-knowledge table ``D_BK`` of identified records:

* a **matching algorithm** ``R`` scores every candidate record by the number
  of inferred attributes on which it disagrees with the profile (Hamming
  distance restricted to inferred attributes);
* a **decision algorithm** ``G`` returns the ``top-k`` closest candidates
  (ties broken uniformly at random);
* the attack succeeds for a user whenever their own record is among the
  ``top-k`` candidates, and **RID-ACC** is the fraction of such users.

Two knowledge models are provided: **FK-RI** uses the full background table
and **PK-RI** only a random subset of its attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..core.dataset import TabularDataset
from ..core.rng import RngLike, ensure_rng
from ..exceptions import InvalidParameterError
from .profile import UNKNOWN, ProfilingResult

#: Default block size for chunked distance computation (bounds memory use).
_BLOCK_SIZE = 1024


def match_distances(
    profiles: np.ndarray,
    background: np.ndarray,
    background_attributes: Sequence[int] | None = None,
    block: slice | None = None,
) -> np.ndarray:
    """Matching algorithm ``R``: disagreement counts between profiles and records.

    Parameters
    ----------
    profiles:
        ``(n, d)`` inferred-profile matrix with :data:`UNKNOWN` for attributes
        not inferred.
    background:
        ``(m, d_bk)`` background-knowledge records (integer codes).
    background_attributes:
        Global attribute index of each background column; defaults to
        ``0..d_bk-1`` (full-knowledge background).
    block:
        Optional slice restricting the profile rows scored by this call.

    Returns
    -------
    ``(len(block), m)`` matrix of distances: for each profile, the number of
    inferred attributes (present in the background) whose value differs from
    the candidate record's.
    """
    profiles = np.asarray(profiles, dtype=np.int64)
    background = np.asarray(background, dtype=np.int64)
    if profiles.ndim != 2 or background.ndim != 2:
        raise InvalidParameterError("profiles and background must be 2-D arrays")
    if background_attributes is None:
        background_attributes = list(range(background.shape[1]))
    background_attributes = [int(a) for a in background_attributes]
    if len(background_attributes) != background.shape[1]:
        raise InvalidParameterError(
            "background_attributes must have one entry per background column"
        )
    rows = profiles[block] if block is not None else profiles
    distances = np.zeros((rows.shape[0], background.shape[0]), dtype=np.int32)
    for column, attribute in enumerate(background_attributes):
        inferred = rows[:, attribute]
        known = inferred != UNKNOWN
        if not known.any():
            continue
        mismatch = inferred[:, None] != background[None, :, column]
        distances += (mismatch & known[:, None]).astype(np.int32)
    return distances


def top_k_candidates(
    distances: np.ndarray, top_k: int, rng: np.random.Generator
) -> np.ndarray:
    """Decision algorithm ``G``: indices of the ``top_k`` closest candidates.

    Ties are broken uniformly at random by adding sub-integer jitter, which
    preserves the ordering between distinct (integer-valued) distances.  Both
    the distances and the jitter are taken in float64 explicitly, so a fixed
    seed selects the same candidates among equal-distance ties no matter
    which dtype the caller's distance matrix arrives in.
    """
    if top_k < 1:
        raise InvalidParameterError("top_k must be >= 1")
    distances = np.asarray(distances)
    jittered = distances.astype(np.float64, copy=False) + rng.random(
        distances.shape, dtype=np.float64
    )
    k = min(top_k, distances.shape[1])
    return np.argpartition(jittered, k - 1, axis=1)[:, :k]


@dataclass
class ReidentificationResult:
    """Outcome of one re-identification attack.

    Attributes
    ----------
    accuracy:
        RID-ACC: fraction of users whose true identity is in their top-k set.
    baseline:
        Expected accuracy of random guessing: ``top_k / m``.
    top_k:
        Size of the candidate set.
    metadata:
        Attack configuration.
    """

    accuracy: float
    baseline: float
    top_k: int
    metadata: Mapping[str, object] = field(default_factory=dict)

    @property
    def lift(self) -> float:
        """Improvement over the random-guess baseline."""
        return self.accuracy / self.baseline if self.baseline > 0 else float("inf")


class ReidentificationAttack:
    """Matching-based re-identification with FK-RI / PK-RI knowledge models.

    Parameters
    ----------
    background:
        Background-knowledge dataset ``D_BK``.  Row ``i`` is assumed to be
        the identified record of user ``i`` (the paper uses the collected
        dataset itself as background knowledge).
    rng:
        Seed or generator (tie-breaking, PK-RI attribute selection).
    """

    def __init__(self, background: TabularDataset, rng: RngLike = None) -> None:
        self.background = background
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------ #
    def attack(
        self,
        profiles: np.ndarray,
        top_k: int = 1,
        background_attributes: Sequence[int] | None = None,
        true_ids: np.ndarray | None = None,
    ) -> ReidentificationResult:
        """Run the matching + decision pipeline and compute RID-ACC.

        ``true_ids[i]`` is the background row that really corresponds to
        profile ``i`` (defaults to ``i``).
        """
        profiles = np.asarray(profiles, dtype=np.int64)
        n = profiles.shape[0]
        m = self.background.n
        if true_ids is None:
            if n != m:
                raise InvalidParameterError(
                    "profiles and background have different sizes; pass true_ids explicitly"
                )
            true_ids = np.arange(n)
        else:
            true_ids = np.asarray(true_ids, dtype=np.int64)
            if true_ids.shape != (n,):
                raise InvalidParameterError(f"true_ids must have shape ({n},)")

        if background_attributes is None:
            background_columns = self.background.data
            attribute_indices = None
        else:
            attribute_indices = [int(a) for a in background_attributes]
            background_columns = self.background.data[:, attribute_indices]

        hits = 0
        for start in range(0, n, _BLOCK_SIZE):
            block = slice(start, min(start + _BLOCK_SIZE, n))
            distances = match_distances(
                profiles, background_columns, attribute_indices, block=block
            )
            candidates = top_k_candidates(distances, top_k, self._rng)
            hits += int((candidates == true_ids[block, None]).any(axis=1).sum())

        return ReidentificationResult(
            accuracy=hits / n,
            baseline=min(1.0, top_k / m),
            top_k=top_k,
            metadata={"model": "FK-RI" if background_attributes is None else "PK-RI"},
        )

    # ------------------------------------------------------------------ #
    def full_knowledge(self, profiles: np.ndarray, top_k: int = 1) -> ReidentificationResult:
        """FK-RI: match against every background attribute."""
        return self.attack(profiles, top_k=top_k, background_attributes=None)

    def partial_knowledge(
        self,
        profiles: np.ndarray,
        top_k: int = 1,
        attributes: Sequence[int] | None = None,
        min_fraction: float = 0.5,
    ) -> ReidentificationResult:
        """PK-RI: match against a random subset of the background attributes.

        When ``attributes`` is not given, a random subset containing at least
        ``min_fraction * d`` attributes is drawn (Appendix C setup).
        """
        d = self.background.d
        if attributes is None:
            lower = max(1, int(np.ceil(min_fraction * d)))
            size = int(self._rng.integers(lower, d + 1))
            attributes = sorted(
                int(a) for a in self._rng.choice(d, size=size, replace=False)
            )
        return self.attack(profiles, top_k=top_k, background_attributes=attributes)

    # ------------------------------------------------------------------ #
    def evaluate_profiling(
        self,
        profiling: ProfilingResult,
        top_k: int = 1,
        model: str = "FK-RI",
        min_surveys: int = 2,
        pk_attributes: Sequence[int] | None = None,
    ) -> dict[int, ReidentificationResult]:
        """RID-ACC after each number of surveys ``>= min_surveys``.

        Returns a mapping ``#surveys -> ReidentificationResult`` matching the
        per-curve structure of Figs. 2, 4 and 9-13.
        """
        model = model.strip().upper().replace("_", "-")
        if model not in ("FK-RI", "PK-RI"):
            raise InvalidParameterError("model must be 'FK-RI' or 'PK-RI'")
        results: dict[int, ReidentificationResult] = {}
        for index, snapshot in enumerate(profiling.snapshots, start=1):
            if index < min_surveys:
                continue
            if model == "FK-RI":
                results[index] = self.full_knowledge(snapshot, top_k=top_k)
            else:
                results[index] = self.partial_knowledge(
                    snapshot, top_k=top_k, attributes=pk_attributes
                )
        return results
