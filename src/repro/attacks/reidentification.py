"""Re-identification attacks (Sec. 3.2.4) — incremental matching engine.

Once the attacker holds an inferred profile ``y_i`` for every user (built by
:mod:`repro.attacks.profile`), the re-identification attack matches it
against a background-knowledge table ``D_BK`` of identified records:

* a **matching algorithm** ``R`` scores every candidate record by the number
  of inferred attributes on which it disagrees with the profile (Hamming
  distance restricted to inferred attributes);
* a **decision algorithm** ``G`` returns the ``top-k`` closest candidates
  (ties broken uniformly at random);
* the attack succeeds for a user whenever their own record is among the
  ``top-k`` candidates, and **RID-ACC** is the fraction of such users.

Two knowledge models are provided: **FK-RI** uses the full background table
and **PK-RI** only a random subset of its attributes.

Engine design
-------------
The RID-ACC-vs-#surveys curves (Figs. 2, 4, 9-13) evaluate the same matching
pipeline after every survey, but consecutive snapshots differ only in the
cells that survey actually wrote.  :meth:`ReidentificationAttack.evaluate_profiling`
therefore iterates **user blocks on the outside and snapshots on the
inside**: per block it maintains one integer distance matrix, updated per
survey from the profiling deltas alone (O(writes x m) instead of a full
O(block x d x m) recompute), and decides top-k membership with the exact
**count-based** rule of :func:`count_topk_hits` — a user's record is in the
top-k iff ``#strictly_closer + #winning_ties < k`` — which needs one uniform
draw per user instead of a ``(block, m)`` float64 jitter matrix and an
``argpartition`` pass.  The pre-incremental engine survives verbatim in
:mod:`repro.attacks.reidentification_reference` as the parity baseline: both
engines agree exactly wherever the true record's distance is tie-free and
are distributionally identical under ties (per-user hit probabilities
coincide; only the tie-break RNG streams differ).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..core.dataset import TabularDataset
from ..core.rng import RngLike, ensure_rng
from ..exceptions import InvalidParameterError
from ..kernels import get_backend
from .profile import UNKNOWN, ProfilingResult, SurveyDelta

#: Default block size for chunked distance computation (bounds memory use).
_BLOCK_SIZE = 1024

#: Integer type of incrementally maintained distance matrices.  Distances
#: are bounded by the number of attributes (a few dozen), so 16 bits halve
#: the memory traffic of the per-block ``(block, m)`` matrix vs int32.
#: :func:`_validate_distance_bound` rejects backgrounds wide enough to
#: overflow it.
_DISTANCE_DTYPE = np.int16


def _validate_distance_bound(num_background_columns: int) -> None:
    """Reject backgrounds whose worst-case distance overflows the int16 state.

    The incremental engine accumulates per-user distances in
    :data:`_DISTANCE_DTYPE`; the worst case (every background attribute
    inferred and mismatching) equals the number of background columns, so
    anything past ``iinfo.max`` could silently wrap and corrupt RID-ACC.
    """
    limit = int(np.iinfo(_DISTANCE_DTYPE).max)
    if num_background_columns > limit:
        raise InvalidParameterError(
            f"background has {num_background_columns} columns but the "
            f"incremental engine tracks distances in "
            f"{np.dtype(_DISTANCE_DTYPE).name} (max {limit}); distances "
            "could overflow"
        )


def _distances_kernel(
    rows: np.ndarray,
    background: np.ndarray,
    background_attributes: Sequence[int],
    out_dtype=np.int32,
) -> np.ndarray:
    """Disagreement counts between pre-converted profile rows and records.

    Assumes ``rows`` and ``background`` are already int64 2-D arrays (the
    callers hoist that conversion out of their per-block loops).  The
    column loop lives in the active :mod:`repro.kernels` backend.
    """
    attributes = np.asarray(background_attributes, dtype=np.int64)
    distances = np.zeros((rows.shape[0], background.shape[0]), dtype=out_dtype)
    get_backend().distance_block(rows, background, attributes, UNKNOWN, distances)
    return distances


def match_distances(
    profiles: np.ndarray,
    background: np.ndarray,
    background_attributes: Sequence[int] | None = None,
    block: slice | None = None,
) -> np.ndarray:
    """Matching algorithm ``R``: disagreement counts between profiles and records.

    Parameters
    ----------
    profiles:
        ``(n, d)`` inferred-profile matrix with :data:`UNKNOWN` for attributes
        not inferred.
    background:
        ``(m, d_bk)`` background-knowledge records (integer codes).
    background_attributes:
        Global attribute index of each background column; defaults to
        ``0..d_bk-1`` (full-knowledge background).
    block:
        Optional slice restricting the profile rows scored by this call.

    Returns
    -------
    ``(len(block), m)`` matrix of distances: for each profile, the number of
    inferred attributes (present in the background) whose value differs from
    the candidate record's.
    """
    profiles = np.asarray(profiles, dtype=np.int64)
    background = np.asarray(background, dtype=np.int64)
    if profiles.ndim != 2 or background.ndim != 2:
        raise InvalidParameterError("profiles and background must be 2-D arrays")
    if background_attributes is None:
        background_attributes = list(range(background.shape[1]))
    background_attributes = [int(a) for a in background_attributes]
    if len(background_attributes) != background.shape[1]:
        raise InvalidParameterError(
            "background_attributes must have one entry per background column"
        )
    rows = profiles[block] if block is not None else profiles
    return _distances_kernel(rows, background, background_attributes)


def top_k_candidates(
    distances: np.ndarray, top_k: int, rng: np.random.Generator
) -> np.ndarray:
    """Decision algorithm ``G``: indices of the ``top_k`` closest candidates.

    Ties are broken uniformly at random by adding sub-integer jitter, which
    preserves the ordering between distinct (integer-valued) distances.  Both
    the distances and the jitter are taken in float64 explicitly, so a fixed
    seed selects the same candidates among equal-distance ties no matter
    which dtype the caller's distance matrix arrives in.
    """
    if top_k < 1:
        raise InvalidParameterError("top_k must be >= 1")
    distances = np.asarray(distances)
    jittered = distances.astype(np.float64, copy=False) + rng.random(
        distances.shape, dtype=np.float64
    )
    k = min(top_k, distances.shape[1])
    return np.argpartition(jittered, k - 1, axis=1)[:, :k]


def count_topk_hits(
    distances: np.ndarray,
    true_ids: np.ndarray,
    top_k: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Exact count-based decision: is each row's true record in its top-k?

    With integer distances and uniformly random tie-breaking, row ``i``'s
    true record (column ``true_ids[i]``) lands in the top-k iff fewer than
    ``k`` candidates are strictly closer *and* the true record wins one of
    the ``k - #closer`` slots left for its tie group.  The tie group of size
    ``e`` (including the true record) fills those ``r`` slots with a uniform
    random subset, so the true record is selected with probability
    ``min(1, r / e)`` — the same hypergeometric law the jitter decision of
    :func:`top_k_candidates` realizes.  One ``count_less`` / ``count_equal``
    pass plus a single uniform draw per row replaces the ``(block, m)``
    float64 jitter matrix and the ``argpartition``; rows whose true distance
    is tie-free (``e == 1``) are decided deterministically, identically to
    the jitter path.
    """
    if top_k < 1:
        raise InvalidParameterError("top_k must be >= 1")
    distances = np.asarray(distances)
    if distances.ndim != 2:
        raise InvalidParameterError("distances must be a 2-D array")
    true_ids = np.asarray(true_ids, dtype=np.int64)
    n_rows, m = distances.shape
    if true_ids.shape != (n_rows,):
        raise InvalidParameterError(f"true_ids must have shape ({n_rows},)")
    true_distance = distances[np.arange(n_rows), true_ids][:, None]
    closer = (distances < true_distance).sum(axis=1)
    tied = (distances == true_distance).sum(axis=1)  # includes the true record
    remaining = min(top_k, m) - closer
    # u * e < r  <=>  hit with probability clip(r / e, 0, 1); exact for the
    # deterministic cases too (r <= 0 never hits, r >= e always does)
    return rng.random(n_rows) * tied < remaining


@dataclass
class ReidentificationResult:
    """Outcome of one re-identification attack.

    Attributes
    ----------
    accuracy:
        RID-ACC: fraction of users whose true identity is in their top-k set.
    baseline:
        Expected accuracy of random guessing: ``top_k / m``.
    top_k:
        Size of the candidate set.
    metadata:
        Attack configuration.
    """

    accuracy: float
    baseline: float
    top_k: int
    metadata: Mapping[str, object] = field(default_factory=dict)

    @property
    def lift(self) -> float:
        """Improvement over the random-guess baseline."""
        return self.accuracy / self.baseline if self.baseline > 0 else float("inf")


class ReidentificationAttack:
    """Matching-based re-identification with FK-RI / PK-RI knowledge models.

    Parameters
    ----------
    background:
        Background-knowledge dataset ``D_BK``.  Row ``i`` is assumed to be
        the identified record of user ``i`` (the paper uses the collected
        dataset itself as background knowledge).
    rng:
        Seed or generator (tie-breaking, PK-RI attribute selection).
    """

    def __init__(self, background: TabularDataset, rng: RngLike = None) -> None:
        self.background = background
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------ #
    def _background_columns(
        self, background_attributes: Sequence[int] | None
    ) -> tuple[np.ndarray, list[int]]:
        """Background submatrix and the global attribute of each column."""
        if background_attributes is None:
            attribute_indices = list(range(self.background.d))
            columns = self.background.data
        else:
            attribute_indices = [int(a) for a in background_attributes]
            columns = self.background.data[:, attribute_indices]
        return np.ascontiguousarray(columns, dtype=np.int64), attribute_indices

    def _resolve_true_ids(self, n: int, true_ids: np.ndarray | None) -> np.ndarray:
        if true_ids is None:
            if n != self.background.n:
                raise InvalidParameterError(
                    "profiles and background have different sizes; pass true_ids explicitly"
                )
            return np.arange(n)
        true_ids = np.asarray(true_ids, dtype=np.int64)
        if true_ids.shape != (n,):
            raise InvalidParameterError(f"true_ids must have shape ({n},)")
        return true_ids

    def attack(
        self,
        profiles: np.ndarray,
        top_k: int = 1,
        background_attributes: Sequence[int] | None = None,
        true_ids: np.ndarray | None = None,
    ) -> ReidentificationResult:
        """Run the matching + decision pipeline and compute RID-ACC.

        ``true_ids[i]`` is the background row that really corresponds to
        profile ``i`` (defaults to ``i``).
        """
        # hoisted conversions: profiles and the background submatrix are
        # turned into int64 arrays once, not once per block
        profiles = np.asarray(profiles, dtype=np.int64)
        if profiles.ndim != 2:
            raise InvalidParameterError("profiles and background must be 2-D arrays")
        n = profiles.shape[0]
        true_ids = self._resolve_true_ids(n, true_ids)
        background_columns, attribute_indices = self._background_columns(
            background_attributes
        )

        hits = 0
        for start in range(0, n, _BLOCK_SIZE):
            block = slice(start, min(start + _BLOCK_SIZE, n))
            distances = _distances_kernel(
                profiles[block], background_columns, attribute_indices
            )
            hits += int(
                count_topk_hits(distances, true_ids[block], top_k, self._rng).sum()
            )

        return ReidentificationResult(
            accuracy=hits / n,
            baseline=min(1.0, top_k / self.background.n),
            top_k=top_k,
            metadata={"model": "FK-RI" if background_attributes is None else "PK-RI"},
        )

    # ------------------------------------------------------------------ #
    def full_knowledge(self, profiles: np.ndarray, top_k: int = 1) -> ReidentificationResult:
        """FK-RI: match against every background attribute."""
        return self.attack(profiles, top_k=top_k, background_attributes=None)

    def _draw_pk_attributes(self, min_fraction: float = 0.5) -> list[int]:
        """Random PK-RI attribute subset of at least ``min_fraction * d``."""
        d = self.background.d
        lower = max(1, int(np.ceil(min_fraction * d)))
        size = int(self._rng.integers(lower, d + 1))
        return sorted(int(a) for a in self._rng.choice(d, size=size, replace=False))

    def partial_knowledge(
        self,
        profiles: np.ndarray,
        top_k: int = 1,
        attributes: Sequence[int] | None = None,
        min_fraction: float = 0.5,
    ) -> ReidentificationResult:
        """PK-RI: match against a random subset of the background attributes.

        When ``attributes`` is not given, a random subset containing at least
        ``min_fraction * d`` attributes is drawn (Appendix C setup).
        """
        if attributes is None:
            attributes = self._draw_pk_attributes(min_fraction)
        return self.attack(profiles, top_k=top_k, background_attributes=attributes)

    # ------------------------------------------------------------------ #
    def _apply_delta_block(
        self,
        profile_block: np.ndarray,
        distances: np.ndarray,
        start: int,
        stop: int,
        delta: SurveyDelta,
        background_columns: np.ndarray,
        column_of_attribute: np.ndarray,
    ) -> None:
        """Fold one survey's writes into a block's profile + distance state.

        Only the cells the delta touches inside ``[start, stop)`` are
        visited: for each rewritten cell the mismatch column of the new
        value is added and (when the cell was already inferred) the old
        value's mismatch column subtracted — an O(writes x m) update versus
        the O(block x d x m) full recompute of the reference engine.
        """
        selected = (delta.rows >= start) & (delta.rows < stop)
        if not selected.any():
            return
        rows = delta.rows[selected] - start
        attributes = delta.attributes[selected]
        values = delta.values[selected]
        for attribute in np.unique(attributes):
            group = attributes == attribute
            group_rows = rows[group]
            group_values = values[group]
            old_values = profile_block[group_rows, attribute]
            profile_block[group_rows, attribute] = group_values
            column = int(column_of_attribute[attribute])
            if column < 0:
                continue  # attribute outside the PK-RI background subset
            changed = old_values != group_values
            if not changed.any():
                continue
            group_rows = group_rows[changed]
            group_values = group_values[changed]
            old_values = old_values[changed]
            background_column = background_columns[:, column]
            # a delta may also *revert* a cell to UNKNOWN (e.g. via
            # from_snapshots); only real values contribute a mismatch column
            get_backend().distance_update(
                distances,
                group_rows,
                old_values,
                group_values,
                background_column,
                UNKNOWN,
            )

    def _incremental_profiling_hits(
        self,
        profiling: ProfilingResult,
        background_columns: np.ndarray,
        attribute_indices: Sequence[int],
        top_k: int,
        min_surveys: int,
    ) -> dict[int, int]:
        """Per-#surveys hit counts via the block-outer/snapshot-inner engine."""
        _validate_distance_bound(int(background_columns.shape[1]))
        n, d = profiling.shape
        num_surveys = len(profiling.deltas)
        column_of_attribute = np.full(d, -1, dtype=np.int64)
        for column, attribute in enumerate(attribute_indices):
            if attribute < d:
                column_of_attribute[attribute] = column
        hits = {s: 0 for s in range(max(1, min_surveys), num_surveys + 1)}
        if not hits:
            return hits  # nothing to evaluate: skip the block/delta replay
        for start in range(0, n, _BLOCK_SIZE):
            stop = min(start + _BLOCK_SIZE, n)
            profile_block = np.full((stop - start, d), UNKNOWN, dtype=np.int64)
            distances = np.zeros(
                (stop - start, background_columns.shape[0]), dtype=_DISTANCE_DTYPE
            )
            true_ids = np.arange(start, stop)
            for index, delta in enumerate(profiling.deltas, start=1):
                self._apply_delta_block(
                    profile_block,
                    distances,
                    start,
                    stop,
                    delta,
                    background_columns,
                    column_of_attribute,
                )
                if index >= min_surveys:
                    hit = count_topk_hits(distances, true_ids, top_k, self._rng)
                    hits[index] += int(hit.sum())
        return hits

    def evaluate_profiling(
        self,
        profiling: ProfilingResult,
        top_k: int = 1,
        model: str = "FK-RI",
        min_surveys: int = 2,
        pk_attributes: Sequence[int] | None = None,
        redraw_attributes: bool = False,
    ) -> dict[int, ReidentificationResult]:
        """RID-ACC after each number of surveys ``>= min_surveys``.

        Returns a mapping ``#surveys -> ReidentificationResult`` matching the
        per-curve structure of Figs. 2, 4 and 9-13, computed by the
        incremental block-outer/snapshot-inner engine (see the module
        docstring).

        Under ``model="PK-RI"`` with ``pk_attributes=None``, one random
        attribute subset is drawn and held fixed for the whole evaluation, so
        the curve isolates profile growth from knowledge churn.
        ``redraw_attributes=True`` restores the historical behavior of
        redrawing a fresh subset at every snapshot (each point then measures
        a *different* partial-knowledge adversary, conflating the two
        effects); it is evaluated snapshot-by-snapshot since a changing
        subset invalidates the incremental distance state.
        """
        model = model.strip().upper().replace("_", "-")
        if model not in ("FK-RI", "PK-RI"):
            raise InvalidParameterError("model must be 'FK-RI' or 'PK-RI'")
        if model == "PK-RI" and pk_attributes is None and redraw_attributes:
            results: dict[int, ReidentificationResult] = {}
            for index, snapshot in enumerate(profiling.snapshots, start=1):
                if index < min_surveys:
                    continue
                results[index] = self.partial_knowledge(snapshot, top_k=top_k)
            return results

        if model == "PK-RI":
            attributes = (
                self._draw_pk_attributes()
                if pk_attributes is None
                else [int(a) for a in pk_attributes]
            )
        else:
            attributes = None
        n, _ = profiling.shape
        if n != self.background.n:
            raise InvalidParameterError(
                "profiling and background have different numbers of users"
            )
        background_columns, attribute_indices = self._background_columns(attributes)
        hits = self._incremental_profiling_hits(
            profiling, background_columns, attribute_indices, top_k, min_surveys
        )
        baseline = min(1.0, top_k / self.background.n)
        return {
            index: ReidentificationResult(
                accuracy=count / n,
                baseline=baseline,
                top_k=top_k,
                metadata={"model": model, "engine": "incremental"},
            )
            for index, count in sorted(hits.items())
        }
