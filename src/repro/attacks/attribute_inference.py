"""Attribute-inference attacks against RS+FD / RS+RFD (Sec. 3.3).

The RS+FD solution hides the ``epsilon``-LDP report among fake values.  The
attacks below train a multiclass classifier to recover which attribute each
user actually sampled, using three threat models that differ only in how the
labeled training set is built:

* **NK** (no knowledge) — the attacker aggregates the observed reports,
  estimates the attribute frequencies, samples ``s`` synthetic profiles from
  them, runs those through the very same client-side pipeline and uses the
  resulting (reports, sampled-attribute) pairs as training data;
* **PK** (partial knowledge) — the attacker knows the sampled attribute of
  ``n_pk`` compromised users and trains on their real reports;
* **HM** (hybrid) — the union of the two training sets above.

The attack quality is measured by AIF-ACC, the fraction of (non-compromised)
users whose sampled attribute is predicted correctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Protocol, Sequence

import numpy as np

from ..core.dataset import TabularDataset
from ..core.frequencies import FrequencyEstimate
from ..core.rng import RngLike, ensure_rng
from ..exceptions import InvalidParameterError
from ..ml.encoding import encode_reports
from ..ml.gradient_boosting import GradientBoostingClassifier
from ..multidim.base import MultidimReports
from ..multidim.rsfd import RSFD
from ..multidim.rsrfd import RSRFD


class SampledAttributeClassifier(Protocol):
    """Anything with scikit-learn style ``fit`` / ``predict``."""

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "SampledAttributeClassifier":
        ...  # pragma: no cover - protocol definition

    def predict(self, features: np.ndarray) -> np.ndarray:
        ...  # pragma: no cover - protocol definition


ClassifierFactory = Callable[[], SampledAttributeClassifier]


def default_classifier_factory(rng: RngLike = None) -> ClassifierFactory:
    """Factory for the default attack classifier (GBDT, XGBoost stand-in)."""

    def build() -> SampledAttributeClassifier:
        return GradientBoostingClassifier(
            n_estimators=25,
            learning_rate=0.3,
            max_depth=4,
            min_samples_leaf=20,
            rng=ensure_rng(rng),
        )

    return build


@dataclass
class AttributeInferenceResult:
    """Outcome of one attribute-inference attack.

    Attributes
    ----------
    model:
        Attack model used: ``"NK"``, ``"PK"`` or ``"HM"``.
    accuracy:
        AIF-ACC on the test users.
    baseline:
        Random-guess baseline ``1/d``.
    predictions:
        Predicted sampled attribute of each test user.
    test_indices:
        Row indices (into the original collection) of the test users.
    metadata:
        Attack configuration (s, n_pk, protocol label, epsilon, ...).
    """

    model: str
    accuracy: float
    baseline: float
    predictions: np.ndarray
    test_indices: np.ndarray
    metadata: Mapping[str, object] = field(default_factory=dict)

    @property
    def lift(self) -> float:
        """Improvement factor of the attack over the random baseline."""
        return self.accuracy / self.baseline if self.baseline > 0 else float("inf")


class AttributeInferenceAttack:
    """Classifier-based attack that uncovers the sampled attribute.

    Parameters
    ----------
    solution:
        The RS+FD or RS+RFD solution instance the users employed (the
        attacker is assumed to know epsilon, protocol and fake-data variant).
    classifier_factory:
        Callable returning a fresh classifier; defaults to the gradient
        boosting stand-in for XGBoost.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        solution: RSFD | RSRFD,
        classifier_factory: ClassifierFactory | None = None,
        rng: RngLike = None,
    ) -> None:
        if not isinstance(solution, (RSFD, RSRFD)):
            raise InvalidParameterError(
                "the attribute-inference attack targets RS+FD or RS+RFD solutions"
            )
        self.solution = solution
        self._rng = ensure_rng(rng)
        self.classifier_factory = classifier_factory or default_classifier_factory(self._rng)

    # ------------------------------------------------------------------ #
    # training-set builders
    # ------------------------------------------------------------------ #
    def synthetic_training_reports(
        self,
        reports: MultidimReports,
        num_profiles: int,
        estimates: Sequence[FrequencyEstimate] | None = None,
    ) -> MultidimReports:
        """NK training data: sanitized reports of synthetic profiles.

        The attacker estimates the attribute frequencies from the observed
        reports (or re-uses provided ``estimates``), samples ``num_profiles``
        synthetic users from them and runs the same RS+FD / RS+RFD pipeline.
        """
        if num_profiles <= 0:
            raise InvalidParameterError("num_profiles must be positive")
        if estimates is None:
            estimates = self.solution.estimate(reports)
        domain = self.solution.domain
        columns = []
        for j, estimate in enumerate(estimates):
            probabilities = estimate.normalized()
            columns.append(
                self._rng.choice(domain.size_of(j), size=num_profiles, p=probabilities)
            )
        synthetic = TabularDataset.from_columns(columns, domain, name="synthetic-profiles")
        return self.solution.collect(synthetic)

    # ------------------------------------------------------------------ #
    # attack models
    # ------------------------------------------------------------------ #
    def no_knowledge(
        self,
        reports: MultidimReports,
        synthetic_factor: float = 1.0,
        estimates: Sequence[FrequencyEstimate] | None = None,
    ) -> AttributeInferenceResult:
        """NK model: train only on synthetic profiles (Sec. 3.3.1)."""
        classifier = self.train_sampled_attribute_classifier(
            reports, synthetic_factor, estimates
        )
        return self._evaluate(
            "NK", reports, classifier, np.arange(reports.n),
            metadata={"s": synthetic_factor},
        )

    def partial_knowledge(
        self, reports: MultidimReports, compromised_fraction: float = 0.1
    ) -> AttributeInferenceResult:
        """PK model: train on compromised real profiles (Sec. 3.3.2)."""
        compromised, test_indices = self._split_compromised(reports, compromised_fraction)
        train_features = encode_reports(reports)[compromised]
        train_labels = reports.sampled[compromised]
        return self._run(
            "PK", reports, train_features, train_labels, test_indices,
            metadata={"n_pk": compromised_fraction},
        )

    def hybrid(
        self,
        reports: MultidimReports,
        synthetic_factor: float = 1.0,
        compromised_fraction: float = 0.1,
        estimates: Sequence[FrequencyEstimate] | None = None,
    ) -> AttributeInferenceResult:
        """HM model: synthetic profiles plus compromised profiles (Sec. 3.3.3)."""
        compromised, test_indices = self._split_compromised(reports, compromised_fraction)
        num_profiles = max(1, int(round(synthetic_factor * reports.n)))
        synthetic = self.synthetic_training_reports(reports, num_profiles, estimates)
        all_features = encode_reports(reports)
        train_features = np.vstack([encode_reports(synthetic), all_features[compromised]])
        train_labels = np.concatenate([synthetic.sampled, reports.sampled[compromised]])
        return self._run(
            "HM", reports, train_features, train_labels, test_indices,
            metadata={"s": synthetic_factor, "n_pk": compromised_fraction},
        )

    def run(self, model: str, reports: MultidimReports, **kwargs) -> AttributeInferenceResult:
        """Dispatch on the model name (``"NK"``, ``"PK"`` or ``"HM"``)."""
        model = model.strip().upper()
        if model == "NK":
            return self.no_knowledge(reports, **kwargs)
        if model == "PK":
            return self.partial_knowledge(reports, **kwargs)
        if model == "HM":
            return self.hybrid(reports, **kwargs)
        raise InvalidParameterError(f"unknown attack model {model!r}; expected NK/PK/HM")

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def train_sampled_attribute_classifier(
        self,
        reports: MultidimReports,
        synthetic_factor: float = 1.0,
        estimates: Sequence[FrequencyEstimate] | None = None,
    ) -> SampledAttributeClassifier:
        """Fit the NK classifier and return it for reuse.

        The training half of :meth:`no_knowledge` (which delegates here):
        synthetic-profile sampling, collection, classifier fit.  ``train`` +
        ``predict_sampled_attribute(..., classifier=...)`` is therefore
        byte-identical to one ``no_knowledge`` call.  The returned
        classifier can also be applied to *later* collections over the same
        domain — the amortization
        :func:`repro.attacks.profile.build_profiles_rsfd` uses across surveys
        sharing an attribute set.
        """
        if synthetic_factor <= 0:
            raise InvalidParameterError("synthetic_factor must be positive")
        num_profiles = max(1, int(round(synthetic_factor * reports.n)))
        training = self.synthetic_training_reports(reports, num_profiles, estimates)
        classifier = self.classifier_factory()
        classifier.fit(
            encode_reports(training), np.asarray(training.sampled, dtype=np.int64)
        )
        return classifier

    def predict_sampled_attribute(
        self,
        reports: MultidimReports,
        synthetic_factor: float = 1.0,
        estimates: Sequence[FrequencyEstimate] | None = None,
        classifier: SampledAttributeClassifier | None = None,
    ) -> np.ndarray:
        """NK-model predictions for every user (used when chaining attacks).

        A ``classifier`` previously fitted by
        :meth:`train_sampled_attribute_classifier` skips training entirely
        (``synthetic_factor`` / ``estimates`` are then ignored).
        """
        if classifier is not None:
            return np.asarray(classifier.predict(encode_reports(reports)), dtype=np.int64)
        result = self.no_knowledge(reports, synthetic_factor, estimates)
        return result.predictions

    def _split_compromised(
        self, reports: MultidimReports, fraction: float
    ) -> tuple[np.ndarray, np.ndarray]:
        if not 0.0 < fraction < 1.0:
            raise InvalidParameterError("compromised_fraction must be in (0, 1)")
        count = max(1, int(round(fraction * reports.n)))
        if count >= reports.n:
            raise InvalidParameterError("compromised_fraction leaves no test users")
        permutation = self._rng.permutation(reports.n)
        return np.sort(permutation[:count]), np.sort(permutation[count:])

    def _run(
        self,
        model: str,
        reports: MultidimReports,
        train_features: np.ndarray,
        train_labels: np.ndarray,
        test_indices: np.ndarray,
        metadata: Mapping[str, object],
    ) -> AttributeInferenceResult:
        classifier = self.classifier_factory()
        classifier.fit(train_features, np.asarray(train_labels, dtype=np.int64))
        return self._evaluate(model, reports, classifier, test_indices, metadata)

    def _evaluate(
        self,
        model: str,
        reports: MultidimReports,
        classifier: SampledAttributeClassifier,
        test_indices: np.ndarray,
        metadata: Mapping[str, object],
    ) -> AttributeInferenceResult:
        if reports.sampled is None:
            raise InvalidParameterError(
                "reports carry no ground-truth sampled attribute; cannot evaluate the attack"
            )
        test_features = encode_reports(reports)[test_indices]
        predictions = np.asarray(classifier.predict(test_features), dtype=np.int64)
        truth = reports.sampled[test_indices]
        accuracy = float(np.mean(predictions == truth))
        return AttributeInferenceResult(
            model=model,
            accuracy=accuracy,
            baseline=1.0 / reports.d,
            predictions=predictions,
            test_indices=np.asarray(test_indices, dtype=np.int64),
            metadata={
                **metadata,
                "label": reports.extra.get("label", reports.solution),
                "epsilon": reports.epsilon,
                "n": reports.n,
            },
        )
