"""Reference re-identification engine (the pre-incremental formulation).

This module preserves the original matching pipeline — one full
``match_distances`` pass per snapshot and the ``(block, m)`` float64 jitter +
``argpartition`` decision of :func:`~repro.attacks.reidentification.top_k_candidates`
— as the parity baseline for the incremental engine in
:mod:`repro.attacks.reidentification`, mirroring how
:mod:`repro.ml.tree_reference` keeps the recursive tree builder.

Equivalence contract (enforced by ``tests/attacks/test_reidentification_engine.py``
and ``benchmarks/bench_reident_matching.py``):

* wherever a user's true-record distance is **tie-free**, both engines make
  the same deterministic decision, so their RID-ACC values agree exactly;
* under ties the two engines consume different RNG streams (a jitter matrix
  here, one uniform draw per user there) but realize the *same* per-user hit
  probability, so their RID-ACC values are draws from the same distribution.

``evaluate_profiling`` here also retains the historical PK-RI behavior of
redrawing a fresh attribute subset at every snapshot when ``pk_attributes``
is ``None`` (the incremental engine draws one subset per evaluation by
default).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import InvalidParameterError
from .profile import ProfilingResult
from .reidentification import (
    _BLOCK_SIZE,
    ReidentificationAttack,
    ReidentificationResult,
    match_distances,
    top_k_candidates,
)


class ReferenceReidentificationAttack(ReidentificationAttack):
    """Drop-in :class:`ReidentificationAttack` running the original engine."""

    def attack(
        self,
        profiles: np.ndarray,
        top_k: int = 1,
        background_attributes: Sequence[int] | None = None,
        true_ids: np.ndarray | None = None,
    ) -> ReidentificationResult:
        """Original pipeline: full distance matrix + jitter top-k per block."""
        profiles = np.asarray(profiles, dtype=np.int64)
        n = profiles.shape[0]
        m = self.background.n
        if true_ids is None:
            if n != m:
                raise InvalidParameterError(
                    "profiles and background have different sizes; pass true_ids explicitly"
                )
            true_ids = np.arange(n)
        else:
            true_ids = np.asarray(true_ids, dtype=np.int64)
            if true_ids.shape != (n,):
                raise InvalidParameterError(f"true_ids must have shape ({n},)")

        if background_attributes is None:
            background_columns = self.background.data
            attribute_indices = None
        else:
            attribute_indices = [int(a) for a in background_attributes]
            background_columns = self.background.data[:, attribute_indices]

        hits = 0
        for start in range(0, n, _BLOCK_SIZE):
            block = slice(start, min(start + _BLOCK_SIZE, n))
            distances = match_distances(
                profiles, background_columns, attribute_indices, block=block
            )
            candidates = top_k_candidates(distances, top_k, self._rng)
            hits += int((candidates == true_ids[block, None]).any(axis=1).sum())

        return ReidentificationResult(
            accuracy=hits / n,
            baseline=min(1.0, top_k / m),
            top_k=top_k,
            metadata={"model": "FK-RI" if background_attributes is None else "PK-RI"},
        )

    def evaluate_profiling(
        self,
        profiling: ProfilingResult,
        top_k: int = 1,
        model: str = "FK-RI",
        min_surveys: int = 2,
        pk_attributes: Sequence[int] | None = None,
        redraw_attributes: bool = True,
    ) -> dict[int, ReidentificationResult]:
        """Original per-snapshot loop: one full matching pass per survey.

        ``redraw_attributes`` is accepted for signature compatibility with
        the incremental engine but the reference always redraws (its
        historical behavior); passing ``False`` raises to avoid silently
        measuring a different adversary.
        """
        model = model.strip().upper().replace("_", "-")
        if model not in ("FK-RI", "PK-RI"):
            raise InvalidParameterError("model must be 'FK-RI' or 'PK-RI'")
        if not redraw_attributes and pk_attributes is None and model == "PK-RI":
            raise InvalidParameterError(
                "the reference engine always redraws PK-RI attributes; "
                "pass pk_attributes or use the incremental engine"
            )
        results: dict[int, ReidentificationResult] = {}
        for index, snapshot in enumerate(profiling.snapshots, start=1):
            if index < min_surveys:
                continue
            if model == "FK-RI":
                results[index] = self.full_knowledge(snapshot, top_k=top_k)
            else:
                results[index] = self.partial_knowledge(
                    snapshot, top_k=top_k, attributes=pk_attributes
                )
        return results
