"""Continuously running LDP collection service.

The paper's experiments aggregate each attribute once, offline; the ROADMAP's
north star is the same estimator math *serving* report streams from millions
of users.  This package turns the O(k) streaming accumulators of
:mod:`repro.protocols.streaming` into a long-running collection server:

* :mod:`repro.service.windows` — tumbling / sliding / cumulative windowed
  accumulators with explicit-``now`` semantics (hand-advanced clocks in
  tests, wall clocks in production) and late-report accounting;
* :mod:`repro.service.server` — a stdlib-only threading HTTP server
  (mirroring the remote executor's coordinator) that ingests report batches
  for many attributes concurrently through a bounded backpressure queue and
  serves snapshot-on-read estimates;
* :mod:`repro.service.client` — the matching JSON client with
  ``Retry-After``-honouring backoff, plus a synthetic load generator with
  population churn and non-stationary value distributions.

Estimates served by a cumulative-window collector are byte-identical to a
one-shot ``aggregate`` over the de-duplicated report stream: support counts
are integer-valued float64s, so accumulation order cannot change a bit.
"""

from .client import CollectionClient, LoadGenerator, ServiceUnavailableError
from .server import (
    AttributeCollector,
    CollectionService,
    CollectorRegistry,
    parse_attribute_spec,
)
from .windows import WindowSpec, WindowedAccumulator, parse_window

__all__ = [
    "AttributeCollector",
    "CollectionClient",
    "CollectionService",
    "CollectorRegistry",
    "LoadGenerator",
    "ServiceUnavailableError",
    "WindowSpec",
    "WindowedAccumulator",
    "parse_attribute_spec",
    "parse_window",
]
