"""Client side of the collection service: JSON transport and load generation.

:class:`CollectionClient` is the wire-level counterpart of
:class:`~repro.service.server.CollectionService`: it registers attributes,
ships report batches with idempotency keys and honours the server's
backpressure contract — a 429 reply sleeps for the server-advertised
``Retry-After`` (floored by the shared :class:`~repro.core.retry.RetryPolicy`
backoff) and retries, up to the policy's bound.

:class:`LoadGenerator` drives synthetic traffic shaped like the paper's
worst case for a live collector: a large churning user population whose
value distribution drifts batch to batch (non-stationary hot items), with a
configurable fraction of duplicate batch deliveries to exercise the dedup
path.  It is deterministic under a seeded ``RngLike``, so benchmarks and CI
can assert exact estimate parity with a one-shot ``aggregate`` over the
de-duplicated stream.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Any, Callable, Iterator, Mapping

import numpy as np

from ..core.retry import RetryPolicy, retry_call
from ..core.rng import RngLike, ensure_rng
from ..exceptions import InvalidParameterError, ReproError
from ..protocols.registry import make_protocol


class ServiceUnavailableError(ReproError, RuntimeError):
    """A request exhausted its retries against a saturated or down service."""


class _Backpressure(Exception):
    """Internal marker: the server replied 429 with a Retry-After hint."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(f"backpressure (retry after {retry_after:g}s)")
        self.retry_after = retry_after


class CollectionClient:
    """Tiny JSON client for one collection service, with bounded retries.

    Network errors and 429 backpressure retry through the shared
    :mod:`repro.core.retry` policy; on a 429 the sleep is
    ``max(policy delay, server Retry-After)`` so a loaded server's explicit
    pacing hint is never undercut.  Other HTTP errors raise immediately —
    they are contract violations (unknown attribute, bad batch), not
    congestion.
    """

    def __init__(
        self,
        base_url: str,
        retry_policy: "RetryPolicy | None" = None,
        timeout: float = 30.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        split = urllib.parse.urlsplit(base_url)
        if split.scheme not in ("http", "") or (not split.netloc and not split.path):
            raise InvalidParameterError(f"unsupported service URL: {base_url!r}")
        netloc = split.netloc or split.path
        host, _, port_text = netloc.partition(":")
        self.host = host
        self.port = int(port_text) if port_text else 80
        self.timeout = float(timeout)
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy(max_retries=5)
        )
        self._sleep = sleep
        #: 429 replies absorbed by retries (observability for benchmarks).
        self.backpressure_hits = 0

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _request(
        self, method: str, path: str, payload: "Mapping[str, Any] | None" = None
    ) -> dict[str, Any]:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body, headers)
            response = conn.getresponse()
            raw = response.read()
            if response.status == 429:
                raise _Backpressure(self._retry_after_hint(response, raw))
            if response.status >= 400:
                raise ServiceUnavailableError(
                    f"service rejected {method} {path}: HTTP {response.status} "
                    f"{raw.decode('utf-8', 'replace')[:200]}"
                )
            reply = json.loads(raw.decode("utf-8"))
        finally:
            conn.close()
        if not isinstance(reply, dict):
            raise ServiceUnavailableError(
                f"service reply to {method} {path} is not a JSON object"
            )
        return reply

    @staticmethod
    def _retry_after_hint(response: http.client.HTTPResponse, raw: bytes) -> float:
        """Pacing hint from a 429: the JSON body's precise float ``retry_after``
        when present, else the RFC 9110 integral ``Retry-After`` header."""
        try:
            body = json.loads(raw.decode("utf-8"))
            hint = float(body["retry_after"])
            if hint > 0:
                return hint
        except (ValueError, TypeError, KeyError, UnicodeDecodeError):
            pass
        try:
            return max(0.0, float(response.getheader("Retry-After") or 0.0))
        except ValueError:
            return 0.0

    def call(
        self, method: str, path: str, payload: "Mapping[str, Any] | None" = None
    ) -> dict[str, Any]:
        """One request with backpressure-aware bounded retries."""
        pending_hint = [0.0]

        def attempt() -> dict[str, Any]:
            try:
                return self._request(method, path, payload)
            except _Backpressure as exc:
                self.backpressure_hits += 1
                pending_hint[0] = exc.retry_after
                raise

        def sleep_honouring_hint(delay: float) -> None:
            # never undercut the server's explicit Retry-After pacing hint
            self._sleep(max(delay, pending_hint[0]))
            pending_hint[0] = 0.0

        try:
            return retry_call(
                attempt,
                self.retry_policy,
                key=path,
                retry_on=(OSError, http.client.HTTPException, _Backpressure),
                sleep=sleep_honouring_hint,
            )
        except _Backpressure as exc:
            raise ServiceUnavailableError(
                f"service still saturated after "
                f"{self.retry_policy.max_retries} retries of {method} {path}"
            ) from exc
        except (OSError, http.client.HTTPException) as exc:
            raise ServiceUnavailableError(
                f"service unreachable after {self.retry_policy.max_retries} "
                f"retries of {method} {path}: {exc}"
            ) from exc

    # ------------------------------------------------------------------ #
    # service API
    # ------------------------------------------------------------------ #
    def register_attribute(
        self, attribute: str, protocol: str, k: int, epsilon: float
    ) -> dict[str, Any]:
        return self.call(
            "POST",
            "/attributes",
            {"attribute": attribute, "protocol": protocol, "k": k, "epsilon": epsilon},
        )

    def send_batch(
        self,
        attribute: str,
        batch_id: str,
        reports: Any,
        t: "float | None" = None,
    ) -> dict[str, Any]:
        """Ship one report batch under an idempotency key."""
        reports = np.asarray(reports)
        payload: dict[str, Any] = {
            "attribute": attribute,
            "batch_id": batch_id,
            "reports": reports.tolist(),
        }
        if t is not None:
            payload["t"] = float(t)
        return self.call("POST", "/report", payload)

    def estimate(self, attribute: str) -> dict[str, Any]:
        query = urllib.parse.urlencode({"attribute": attribute})
        return self.call("GET", f"/estimate?{query}")

    def flush(self) -> dict[str, Any]:
        """Barrier: block until the server has applied every queued batch."""
        return self.call("POST", "/flush")

    def stats(self) -> dict[str, Any]:
        return self.call("GET", "/stats")

    def pause(self) -> dict[str, Any]:
        return self.call("POST", "/pause")

    def resume(self) -> dict[str, Any]:
        return self.call("POST", "/resume")


class LoadGenerator:
    """Deterministic synthetic report traffic with churn and drift.

    Parameters
    ----------
    protocol, k, epsilon:
        Client-side oracle configuration (must match the registered
        attribute).
    users:
        Total reports to emit across all batches.
    batch_size:
        Reports per batch (one batch = one idempotency key).
    churn:
        Fraction of the value pool redrawn between batches — a churning
        population keeps values from one batch correlating with the next.
    drift:
        How far the categorical distribution rotates per batch: the "hot"
        value advances by ``drift`` positions each batch, so the stream is
        non-stationary end to end.
    duplicate_every:
        Re-deliver every N-th batch under its original idempotency key
        (``0`` disables duplicates).  Duplicates must not change estimates.
    rng:
        Seed or generator; the emitted stream is a pure function of it.
    """

    def __init__(
        self,
        protocol: str,
        k: int,
        epsilon: float,
        users: int,
        batch_size: int = 8192,
        churn: float = 0.1,
        drift: int = 1,
        duplicate_every: int = 0,
        rng: RngLike = 0,
    ) -> None:
        if int(users) < 1:
            raise InvalidParameterError(f"users must be >= 1, got {users}")
        if int(batch_size) < 1:
            raise InvalidParameterError(f"batch_size must be >= 1, got {batch_size}")
        if not 0.0 <= float(churn) <= 1.0:
            raise InvalidParameterError(f"churn must be in [0, 1], got {churn}")
        if int(duplicate_every) < 0:
            raise InvalidParameterError(
                f"duplicate_every must be >= 0, got {duplicate_every}"
            )
        self._rng = ensure_rng(rng)
        self.oracle = make_protocol(protocol, k=k, epsilon=epsilon, rng=self._rng)
        self.users = int(users)
        self.batch_size = int(batch_size)
        self.churn = float(churn)
        self.drift = int(drift)
        self.duplicate_every = int(duplicate_every)
        self._values: "np.ndarray | None" = None
        self._hot = 0

    def _weights(self) -> np.ndarray:
        """Current value distribution: one hot value over a uniform floor."""
        k = self.oracle.k
        weights = np.full(k, 1.0, dtype=float)
        weights[self._hot % k] = k / 2.0  # the hot item carries ~1/3 of mass
        return weights / weights.sum()

    def _next_values(self, count: int) -> np.ndarray:
        """Draw one batch of true values: churned pool, drifting hot item."""
        k = self.oracle.k
        if self._values is None or self._values.size != count:
            self._values = self._rng.choice(k, size=count, p=self._weights())
        else:
            redraw = self._rng.random(count) < self.churn
            fresh = self._rng.choice(k, size=int(redraw.sum()), p=self._weights())
            self._values = self._values.copy()
            self._values[redraw] = fresh
        self._hot += self.drift
        return self._values

    def batches(self) -> Iterator[tuple[str, Any, bool]]:
        """Yield ``(batch_id, reports, is_duplicate)`` triples in order.

        Duplicates re-yield the *same randomized reports* under the same
        idempotency key, exactly like an at-least-once pipe re-delivering a
        batch whose ACK was lost.
        """
        emitted = 0
        index = 0
        while emitted < self.users:
            count = min(self.batch_size, self.users - emitted)
            values = self._next_values(count)
            reports = self.oracle.randomize_many(values)
            batch_id = f"batch-{index:08d}"
            yield batch_id, reports, False
            if self.duplicate_every and (index + 1) % self.duplicate_every == 0:
                yield batch_id, reports, True
            emitted += count
            index += 1

    def drive(
        self,
        client: CollectionClient,
        attribute: str,
        t: "float | None" = None,
    ) -> dict[str, Any]:
        """Send the whole load through ``client``; returns send counters."""
        sent = duplicates = reports_sent = 0
        for batch_id, reports, is_duplicate in self.batches():
            client.send_batch(attribute, batch_id, reports, t=t)
            sent += 1
            duplicates += int(is_duplicate)
            if not is_duplicate:
                reports_sent += int(self.oracle._num_reports(reports))
        return {
            "batches_sent": sent,
            "duplicate_batches_sent": duplicates,
            "unique_reports_sent": reports_sent,
            "backpressure_hits": client.backpressure_hits,
        }
