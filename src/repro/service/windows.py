"""Windowed streaming accumulators for the collection service.

A live collector cannot keep every report ever seen; it folds reports into
:class:`~repro.protocols.streaming.CountAccumulator` panes and answers
estimate queries from the panes currently inside the window.  Three window
shapes are supported, written ``cumulative``, ``tumbling:W`` and
``sliding:WxP`` (seconds):

* **cumulative** — one pane that never expires: the estimate covers every
  report since the collector started, byte-identical to a one-shot
  ``aggregate`` over the de-duplicated stream;
* **tumbling:W** — one pane of width ``W``: at each window edge the pane is
  discarded and a fresh one starts;
* **sliding:WxP** — a ring of ``P`` panes of width ``W/P``: the estimate
  covers the last ``W`` seconds at pane granularity, and panes falling off
  the back are discarded incrementally (classic paned / tumbling-union
  sliding windows).

Every time-sensitive method takes an explicit ``now`` (like
:class:`~repro.experiments.remote.LeaseTable`), so window semantics are
tested on a hand-advanced clock — no sleeps, no timing races.  Time starts
at the collector's first event; a report timestamped exactly on a window
edge belongs to the *new* pane (``pane = floor(t / pane_width)``).

Reports older than the oldest live pane are **late**: they are dropped (the
panes that could absorb them are gone) and counted in :attr:`late_dropped`,
surfacing in the service's ``/stats``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from ..exceptions import InvalidParameterError
from ..protocols.streaming import CountAccumulator

#: Window kinds accepted by :func:`parse_window`.
WINDOW_KINDS = ("cumulative", "tumbling", "sliding")


@dataclass(frozen=True)
class WindowSpec:
    """Parsed window shape: kind, total span and pane count.

    ``span`` is ``None`` for cumulative windows; for paned windows the pane
    width is ``span / panes`` (tumbling windows are the ``panes == 1``
    special case).
    """

    kind: str
    span: float | None = None
    panes: int = 1

    def __post_init__(self) -> None:
        if self.kind not in WINDOW_KINDS:
            raise InvalidParameterError(
                f"window kind must be one of {WINDOW_KINDS}, got {self.kind!r}"
            )
        if self.kind == "cumulative":
            if self.span is not None or self.panes != 1:
                raise InvalidParameterError(
                    "cumulative windows take no span or pane count"
                )
            return
        if self.span is None or not float(self.span) > 0:
            raise InvalidParameterError(
                f"window span must be > 0 seconds, got {self.span}"
            )
        if int(self.panes) < 1:
            raise InvalidParameterError(
                f"window pane count must be >= 1, got {self.panes}"
            )

    @property
    def pane_width(self) -> float:
        """Seconds covered by one pane (``inf`` for cumulative windows)."""
        if self.kind == "cumulative" or self.span is None:
            return math.inf
        return float(self.span) / int(self.panes)

    def describe(self) -> str:
        """Canonical spec string (round-trips through :func:`parse_window`)."""
        if self.kind == "cumulative":
            return "cumulative"
        if self.kind == "tumbling":
            return f"tumbling:{self.span:g}"
        return f"sliding:{self.span:g}x{self.panes}"


def parse_window(text: str) -> WindowSpec:
    """Parse a window spec string: ``cumulative``, ``tumbling:W``, ``sliding:WxP``.

    Examples
    --------
    >>> parse_window("tumbling:60").pane_width
    60.0
    >>> parse_window("sliding:60x4").pane_width
    15.0
    """
    text = str(text).strip()
    kind, sep, rest = text.partition(":")
    kind = kind.lower()
    if kind == "cumulative":
        if sep:
            raise InvalidParameterError(
                f"cumulative windows take no parameters, got {text!r}"
            )
        return WindowSpec("cumulative")
    if kind == "tumbling":
        try:
            return WindowSpec("tumbling", span=float(rest))
        except ValueError as exc:
            raise InvalidParameterError(
                f"tumbling window must look like tumbling:SECONDS, got {text!r}"
            ) from exc
    if kind == "sliding":
        span_text, sep, panes_text = rest.partition("x")
        try:
            if not sep:
                raise ValueError("missing pane count")
            return WindowSpec("sliding", span=float(span_text), panes=int(panes_text))
        except ValueError as exc:
            raise InvalidParameterError(
                f"sliding window must look like sliding:SECONDSxPANES, got {text!r}"
            ) from exc
    raise InvalidParameterError(
        f"window kind must be one of {WINDOW_KINDS}, got {text!r}"
    )


class WindowedAccumulator:
    """Paned windowed wrapper around one oracle's streaming accumulators.

    The accumulator keeps at most ``spec.panes`` live
    :class:`CountAccumulator` panes (O(panes × k) floats total) plus drop
    counters; report chunks are folded in and discarded immediately.  It is
    **not** thread-safe — the service serializes access per attribute.
    """

    def __init__(self, oracle: Any, spec: WindowSpec) -> None:
        self._oracle = oracle
        self.spec = spec
        self._panes: dict[int, CountAccumulator] = {}
        #: Highest event time seen so far (the watermark); window eviction
        #: and lateness are judged against it, so time never runs backwards.
        self.watermark: float | None = None
        #: Reports dropped because they were older than the oldest live pane.
        self.late_dropped = 0
        #: Reports folded into a pane (late drops excluded).
        self.accepted = 0

    # ------------------------------------------------------------------ #
    # time arithmetic
    # ------------------------------------------------------------------ #
    def _pane_index(self, t: float) -> int:
        width = self.spec.pane_width
        if math.isinf(width):
            return 0
        return int(math.floor(float(t) / width))

    def _oldest_live(self) -> int:
        """Oldest pane index still inside the window at the watermark."""
        if self.watermark is None:
            return 0
        return self._pane_index(self.watermark) - int(self.spec.panes) + 1

    def pane_index(self, t: float) -> int:
        """Pane index for event time ``t`` (0 for cumulative windows)."""
        return self._pane_index(t)

    def oldest_live_index(self) -> int:
        """Oldest pane index still live at the watermark.

        Anything below this is outside the window's retention: the panes
        that could absorb it are gone, so state keyed on pane index (the
        service's per-batch dedup buckets) can be evicted at this boundary.
        """
        return self._oldest_live()

    def _advance(self, now: float) -> None:
        now = float(now)
        if self.watermark is None or now > self.watermark:
            self.watermark = now
        oldest = self._oldest_live()
        for index in [i for i in self._panes if i < oldest]:
            del self._panes[index]

    # ------------------------------------------------------------------ #
    # ingest / read
    # ------------------------------------------------------------------ #
    def add(self, chunk: Any, now: float) -> int:
        """Fold one report chunk stamped at event time ``now``.

        Returns the number of reports absorbed (0 when the chunk was late
        and dropped).  ``now`` also advances the watermark, so out-of-order
        chunks older than the window are dropped rather than resurrecting
        an expired pane.
        """
        count = int(self._oracle._num_reports(chunk))
        self._advance(now)
        index = self._pane_index(now)
        if index < self._oldest_live():
            self.late_dropped += count
            return 0
        if count == 0:
            return 0
        pane = self._panes.get(index)
        if pane is None:
            pane = self._panes[index] = self._oracle.accumulator()
        pane.add(chunk)
        self.accepted += count
        return count

    def snapshot(self, now: float) -> CountAccumulator:
        """Merged copy of every pane live at ``now`` (ingest keeps running).

        The returned accumulator is independent state: finalizing or mutating
        it never touches the window.  An empty window yields an accumulator
        with ``n == 0`` (``finalize`` then raises ``EstimationError``; the
        service reports "no data" instead of an estimate).
        """
        self._advance(now)
        merged = self._oracle.accumulator()
        for index in sorted(self._panes):
            pane = self._panes[index]
            merged.counts += pane.counts
            merged.n += pane.n
        return merged

    def live_panes(self, now: float) -> int:
        """Number of non-empty panes inside the window at ``now``."""
        self._advance(now)
        return len(self._panes)
