"""Run a collection service from the command line.

``python -m repro.service --listen 127.0.0.1:8787 \\
    --attribute age:GRR:16:1.0 --attribute city:OLH:64:2.0 \\
    --window sliding:60x4``

The process serves until interrupted; ``GET /stats`` is the live health
view.  The same flags are reachable through the main CLI as
``python -m repro.experiments.runner --serve ...``.
"""

from __future__ import annotations

import argparse
import sys
import threading
from typing import Sequence

from ..experiments.remote import parse_listen
from .server import CollectionService, parse_attribute_spec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run a live LDP collection service.",
    )
    parser.add_argument(
        "--listen",
        default="127.0.0.1:0",
        help="HOST:PORT to bind (default 127.0.0.1:0 = ephemeral port)",
    )
    parser.add_argument(
        "--attribute",
        action="append",
        default=[],
        metavar="NAME:PROTOCOL:K:EPSILON",
        help="attribute to collect (repeatable), e.g. age:GRR:16:1.0",
    )
    parser.add_argument(
        "--window",
        default="cumulative",
        help="window spec: cumulative, tumbling:SECONDS or sliding:SECONDSxPANES",
    )
    parser.add_argument(
        "--queue-size",
        type=int,
        default=256,
        help="ingest queue bound in batches (backpressure beyond it)",
    )
    return parser


def main(argv: "Sequence[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    service = CollectionService(
        listen=parse_listen(args.listen),
        window=args.window,
        queue_size=args.queue_size,
    )
    for spec in args.attribute:
        service.registry.register(**parse_attribute_spec(spec))
    with service:
        print(f"collection service listening on {service.url}", flush=True)
        for name in service.registry.attributes():
            print(f"  attribute {name}: {service.registry.get(name).stats()}", flush=True)
        try:
            threading.Event().wait()  # serve until interrupted
        except KeyboardInterrupt:
            print("shutting down", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
