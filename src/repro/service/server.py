"""The live LDP collection server.

Architecture (mirroring the remote executor's coordinator):

* a :class:`CollectorRegistry` maps attribute names to
  :class:`AttributeCollector` objects — one frequency oracle plus one
  :class:`~repro.service.windows.WindowedAccumulator` plus the batch-id
  dedup set, guarded by a per-attribute lock so attributes ingest
  concurrently without contending on one global lock;
* a :class:`CollectionService` wraps the registry in a stdlib
  ``ThreadingHTTPServer`` front end and a **bounded ingest queue** drained
  by a single applier thread.  Handler threads only validate, decode and
  enqueue; when the queue is full (or the service is paused) the client
  gets **HTTP 429 with a Retry-After header** — backpressure is part of the
  wire contract, not an exception trace;
* ``GET /estimate`` is **snapshot-on-read**: it merges copies of the live
  panes and finalizes the copy, so ingestion never pauses and the reader
  never observes a half-folded pane.

Report batches carry idempotency keys (``batch_id``): re-deliveries (client
retries after a lost ACK, at-least-once pipes) are counted and dropped at
apply time, so a cumulative-window estimate stays byte-identical to a
one-shot ``aggregate`` over the de-duplicated stream.

HTTP API (JSON bodies)
----------------------
* ``POST /attributes`` ``{attribute, protocol, k, epsilon}`` — register an
  attribute (idempotent when the config matches; 409 on conflict).
* ``POST /report`` ``{attribute, batch_id, reports, t?}`` — enqueue one
  batch; 202 queued, 429 backpressure, 404 unknown attribute.
* ``POST /flush`` — barrier: block until every queued batch is applied.
* ``GET /estimate?attribute=NAME[&t=T]`` — snapshot estimate for one
  attribute, at event time ``t`` (default: the attribute's watermark).
* ``GET /stats`` — queue depth and per-attribute ingest counters.
* ``POST /pause`` / ``POST /resume`` — deterministically force the 429
  path (benchmarks, CI).
"""

from __future__ import annotations

import json
import math
import queue
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping

import numpy as np

from ..exceptions import EstimationError, InvalidParameterError
from ..protocols.registry import make_protocol
from .windows import WindowSpec, WindowedAccumulator, parse_window

#: Default bound on the ingest queue (batches, not reports).
DEFAULT_QUEUE_SIZE = 256

#: Default ``Retry-After`` seconds sent with a 429 reply.
DEFAULT_RETRY_AFTER = 0.05


def parse_attribute_spec(text: str) -> dict[str, Any]:
    """Parse ``NAME:PROTOCOL:K:EPSILON`` (CLI / ``__main__`` shorthand).

    >>> parse_attribute_spec("age:GRR:16:1.0")["k"]
    16
    """
    parts = str(text).split(":")
    if len(parts) != 4:
        raise InvalidParameterError(
            f"attribute spec must look like NAME:PROTOCOL:K:EPSILON, got {text!r}"
        )
    name, protocol, k_text, epsilon_text = parts
    if not name:
        raise InvalidParameterError(f"attribute name must be non-empty in {text!r}")
    try:
        k = int(k_text)
        epsilon = float(epsilon_text)
    except ValueError as exc:
        raise InvalidParameterError(
            f"attribute spec {text!r}: k must be an integer and epsilon a float"
        ) from exc
    return {"attribute": name, "protocol": protocol, "k": k, "epsilon": epsilon}


class AttributeCollector:
    """Ingest state for one attribute: oracle, window, dedup set, counters.

    All mutating access goes through :meth:`apply` / :meth:`snapshot`, which
    take the collector's lock — two attributes never contend, two batches
    for the same attribute serialize.

    The dedup state is **bounded like the window itself**: batch ids are
    bucketed by the pane their event time falls in, and buckets older than
    the window's retention are evicted — a re-delivery of an evicted batch
    would be dropped as late anyway, so forgetting its id cannot double
    count.  Cumulative windows have one never-expiring pane, so they retain
    every id — exact dedup is what makes the cumulative estimate
    byte-identical to a one-shot ``aggregate`` over the de-duplicated
    stream.
    """

    def __init__(self, attribute: str, oracle: Any, spec: WindowSpec) -> None:
        self.attribute = str(attribute)
        self.oracle = oracle
        self.window = WindowedAccumulator(oracle, spec)
        self._seen: dict[int, set[str]] = {}
        self.duplicate_batches = 0
        self.batches = 0
        self._lock = threading.Lock()

    def decode(self, reports: Any) -> Any:
        """Decode and validate a JSON-shaped report batch.

        Coerces to the oracle's array form, then applies the oracle's wire
        contract (``validate_reports``) so a malformed batch — wrong matrix
        width, values outside the report alphabet — raises here (an HTTP
        400 at the edge) instead of crashing the applier thread.
        """
        try:
            chunk = np.asarray(reports, dtype=np.int64)
        except (TypeError, ValueError) as exc:
            raise InvalidParameterError(
                f"reports for {self.attribute!r} are not an integer array: {exc}"
            ) from exc
        try:
            return self.oracle.validate_reports(chunk)
        except InvalidParameterError as exc:
            raise InvalidParameterError(
                f"reports for {self.attribute!r} are malformed: {exc}"
            ) from exc

    def _seen_before(self, batch_id: str) -> bool:
        return any(batch_id in bucket for bucket in self._seen.values())

    def _evict_seen(self) -> None:
        """Drop dedup buckets older than the window's retention."""
        oldest = self.window.oldest_live_index()
        for index in [i for i in self._seen if i < oldest]:
            del self._seen[index]

    def apply(self, batch_id: str, chunk: Any, now: float) -> str:
        """Fold one batch: ``"accepted"``, ``"duplicate"`` or ``"late"``."""
        batch_id = str(batch_id)
        with self._lock:
            if self._seen_before(batch_id):
                self.duplicate_batches += 1
                return "duplicate"
            self._seen.setdefault(self.window.pane_index(now), set()).add(batch_id)
            self.batches += 1
            count = int(self.oracle._num_reports(chunk))
            absorbed = self.window.add(chunk, now)
            self._evict_seen()
        return "accepted" if absorbed or count == 0 else "late"

    def snapshot(self, now: "float | None" = None) -> dict[str, Any]:
        """Snapshot-on-read estimate: finalize a merged copy of the panes.

        ``now`` defaults to the window's watermark — windows live in event
        time, so "the estimate" means "as of the latest report seen", not
        as of an unrelated wall clock.  Pass an explicit ``now`` (the
        ``?t=`` query parameter over HTTP) to force the window forward.
        """
        with self._lock:
            if now is None:
                now = self.window.watermark or 0.0
            merged = self.window.snapshot(now)
        payload: dict[str, Any] = {
            "attribute": self.attribute,
            "n": int(merged.n),
            "window": self.window.spec.describe(),
        }
        try:
            estimate = merged.finalize()
        except EstimationError:
            payload["estimates"] = None  # empty window: no data, not a crash
        else:
            payload["estimates"] = estimate.estimates.tolist()
        return payload

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "batches": self.batches,
                "duplicate_batches": self.duplicate_batches,
                "tracked_batch_ids": sum(len(b) for b in self._seen.values()),
                "accepted_reports": self.window.accepted,
                "late_dropped_reports": self.window.late_dropped,
                "protocol": self.oracle.name,
                "k": self.oracle.k,
                "epsilon": float(self.oracle.epsilon),
                "window": self.window.spec.describe(),
            }


class CollectorRegistry:
    """Thread-safe attribute → :class:`AttributeCollector` map."""

    def __init__(self, window: WindowSpec | str = "cumulative") -> None:
        self.window = parse_window(window) if isinstance(window, str) else window
        self._collectors: dict[str, AttributeCollector] = {}
        self._lock = threading.Lock()

    def register(
        self,
        attribute: str,
        protocol: str,
        k: int,
        epsilon: float,
        rng: Any = None,
    ) -> AttributeCollector:
        """Create (or idempotently re-register) one attribute's collector.

        Re-registering with an *equivalent estimator* returns the existing
        collector; a conflicting configuration raises — silently swapping
        estimators under live traffic would corrupt the stream.
        """
        attribute = str(attribute)
        oracle = make_protocol(protocol, k=k, epsilon=epsilon, rng=rng)
        with self._lock:
            existing = self._collectors.get(attribute)
            if existing is not None:
                if (
                    existing.oracle.estimator_fingerprint()
                    != oracle.estimator_fingerprint()
                ):
                    raise InvalidParameterError(
                        f"attribute {attribute!r} is already registered with "
                        f"{existing.oracle.estimator_fingerprint()}; refusing "
                        f"to re-register as {oracle.estimator_fingerprint()}"
                    )
                return existing
            collector = AttributeCollector(attribute, oracle, self.window)
            self._collectors[attribute] = collector
            return collector

    def get(self, attribute: str) -> "AttributeCollector | None":
        with self._lock:
            return self._collectors.get(str(attribute))

    def attributes(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._collectors))

    def stats(self) -> dict[str, Any]:
        with self._lock:
            collectors = list(self._collectors.values())
        return {c.attribute: c.stats() for c in collectors}


class _ServiceHandler(BaseHTTPRequestHandler):
    """JSON-over-HTTP face of the :class:`CollectionService`."""

    server: "_ServiceHTTPServer"
    protocol_version = "HTTP/1.1"

    # silence per-request stderr logging — /stats is the authoritative trace
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _reply(
        self,
        payload: "Mapping[str, Any]",
        code: int = 200,
        headers: "Mapping[str, str] | None" = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        payload = json.loads(raw.decode("utf-8")) if raw else {}
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def do_GET(self) -> None:  # noqa: N802  (http.server API)
        service = self.server.service
        split = urllib.parse.urlsplit(self.path)
        if split.path == "/estimate":
            params = urllib.parse.parse_qs(split.query)
            attribute = (params.get("attribute") or [""])[0]
            collector = service.registry.get(attribute)
            if collector is None:
                self._reply({"error": f"unknown attribute {attribute!r}"}, code=404)
                return
            t_text = (params.get("t") or [None])[0]
            try:
                now = None if t_text is None else float(t_text)
            except ValueError:
                self._reply({"error": f"t must be a float, got {t_text!r}"}, code=400)
                return
            self._reply(collector.snapshot(now))
        elif split.path == "/stats":
            self._reply(service.stats())
        elif split.path == "/healthz":
            self._reply({"status": "ok"})
        else:
            self._reply({"error": f"unknown path {self.path}"}, code=404)

    def do_POST(self) -> None:  # noqa: N802  (http.server API)
        service = self.server.service
        try:
            request = self._read_json()
        except (ValueError, UnicodeDecodeError) as exc:
            self._reply({"error": f"bad request: {exc}"}, code=400)
            return
        if self.path == "/attributes":
            try:
                k = int(request.get("k") or 0)
                epsilon = float(request.get("epsilon") or 0.0)
            except (TypeError, ValueError) as exc:
                self._reply(
                    {"error": f"k must be an integer and epsilon a float: {exc}"},
                    code=400,
                )
                return
            try:
                collector = service.registry.register(
                    str(request.get("attribute") or ""),
                    str(request.get("protocol") or ""),
                    k,
                    epsilon,
                )
            except (InvalidParameterError, KeyError) as exc:
                code = 409 if "already registered" in str(exc) else 400
                self._reply({"error": str(exc)}, code=code)
                return
            self._reply({"status": "ok", "attribute": collector.attribute})
        elif self.path == "/report":
            self._handle_report(request)
        elif self.path == "/flush":
            service.flush()
            self._reply({"status": "ok"})
        elif self.path == "/pause":
            service.pause()
            self._reply({"status": "paused"})
        elif self.path == "/resume":
            service.resume()
            self._reply({"status": "resumed"})
        else:
            self._reply({"error": f"unknown path {self.path}"}, code=404)

    def _handle_report(self, request: dict[str, Any]) -> None:
        service = self.server.service
        attribute = str(request.get("attribute") or "")
        collector = service.registry.get(attribute)
        if collector is None:
            self._reply({"error": f"unknown attribute {attribute!r}"}, code=404)
            return
        batch_id = str(request.get("batch_id") or "")
        if not batch_id:
            self._reply({"error": "batch_id is required"}, code=400)
            return
        try:
            chunk = collector.decode(request.get("reports"))
        except InvalidParameterError as exc:
            self._reply({"error": str(exc)}, code=400)
            return
        t = request.get("t")
        try:
            now = service.clock() if t is None else float(t)
        except (TypeError, ValueError):
            self._reply({"error": f"t must be a float, got {t!r}"}, code=400)
            return
        if not service.enqueue(collector, batch_id, chunk, now):
            # RFC 9110 Retry-After is integral delta-seconds; the JSON body
            # carries the precise float, which the bundled client prefers
            self._reply(
                {"error": "ingest queue full", "retry_after": service.retry_after},
                code=429,
                headers={"Retry-After": str(math.ceil(service.retry_after))},
            )
            return
        self._reply({"status": "queued", "batch_id": batch_id}, code=202)


class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: "CollectionService") -> None:
        super().__init__(address, _ServiceHandler)
        self.service = service


class CollectionService:
    """Bounded-queue ingest pipeline plus HTTP front end.

    Parameters
    ----------
    listen:
        ``(host, port)`` to bind (port 0 = ephemeral).
    window:
        :class:`WindowSpec` or spec string shared by all attributes.
    queue_size:
        Ingest-queue bound in batches; a full queue is backpressure (429),
        never unbounded memory.
    retry_after:
        Seconds advertised in the 429 ``Retry-After`` header.
    clock:
        Injectable event-time source (hand-advanced in tests).
    """

    def __init__(
        self,
        listen: tuple[str, int] = ("127.0.0.1", 0),
        window: WindowSpec | str = "cumulative",
        queue_size: int = DEFAULT_QUEUE_SIZE,
        retry_after: float = DEFAULT_RETRY_AFTER,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if int(queue_size) < 1:
            raise InvalidParameterError(
                f"queue_size must be >= 1, got {queue_size}"
            )
        if not float(retry_after) > 0:
            raise InvalidParameterError(
                f"retry_after must be > 0, got {retry_after}"
            )
        self.registry = CollectorRegistry(window)
        self.queue_size = int(queue_size)
        self.retry_after = float(retry_after)
        self.clock = clock
        self._listen = listen
        self._queue: "queue.Queue[tuple[AttributeCollector, str, np.ndarray, float] | None]"
        self._queue = queue.Queue(maxsize=self.queue_size)
        self._paused = threading.Event()
        self._rejected = 0
        self._failed = 0
        self._counters_lock = threading.Lock()
        self._server: "_ServiceHTTPServer | None" = None
        self._server_thread: "threading.Thread | None" = None
        self._applier: "threading.Thread | None" = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "CollectionService":
        """Bind the HTTP server and start the applier thread."""
        if self._server is not None:
            raise InvalidParameterError("service is already running")
        self._server = _ServiceHTTPServer(self._listen, self)
        self._server_thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._server_thread.start()
        self._applier = threading.Thread(target=self._apply_loop, daemon=True)
        self._applier.start()
        return self

    def stop(self) -> None:
        """Drain the queue, stop the applier and close the HTTP server."""
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if self._server_thread is not None:
            self._server_thread.join(timeout=5.0)
            self._server_thread = None
        if self._applier is not None:
            self._queue.put(None)  # sentinel: drain then exit
            self._applier.join(timeout=5.0)
            self._applier = None

    def __enter__(self) -> "CollectionService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    @property
    def url(self) -> str:
        """``http://host:port`` once :meth:`start` has bound the socket."""
        if self._server is None:
            raise InvalidParameterError("service is not running")
        host, port = self._server.server_address[0], self._server.server_address[1]
        return f"http://{host}:{port}"

    # ------------------------------------------------------------------ #
    # ingest pipeline
    # ------------------------------------------------------------------ #
    def enqueue(
        self,
        collector: AttributeCollector,
        batch_id: str,
        chunk: np.ndarray,
        now: float,
    ) -> bool:
        """Admit one batch into the bounded queue; ``False`` = backpressure."""
        if self._paused.is_set():
            self._count_rejected()
            return False
        try:
            self._queue.put_nowait((collector, batch_id, chunk, now))
        except queue.Full:
            self._count_rejected()
            return False
        return True

    def _count_rejected(self) -> None:
        with self._counters_lock:
            self._rejected += 1

    def _count_failed(self) -> None:
        with self._counters_lock:
            self._failed += 1

    def _apply_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is None:
                    return
                collector, batch_id, chunk, now = item
                try:
                    collector.apply(batch_id, chunk, now)
                except Exception:
                    # The applier is the service's single point of progress:
                    # one decodable-but-invalid batch must surface as a
                    # failure counter, never kill the thread (which would
                    # strand the queue, deadlock /flush and 429 forever).
                    self._count_failed()
            finally:
                self._queue.task_done()

    def flush(self) -> None:
        """Barrier: return once every batch queued so far has been applied."""
        self._queue.join()

    def ingest_local(
        self, attribute: str, batch_id: str, reports: Any, now: "float | None" = None
    ) -> str:
        """In-process ingest (benchmarks): same dedup/window path, no HTTP."""
        collector = self.registry.get(attribute)
        if collector is None:
            raise InvalidParameterError(f"unknown attribute {attribute!r}")
        chunk = collector.decode(reports)
        return collector.apply(batch_id, chunk, self.clock() if now is None else now)

    # ------------------------------------------------------------------ #
    # control / observability
    # ------------------------------------------------------------------ #
    def pause(self) -> None:
        """Reject every new batch with 429 until :meth:`resume` (tests, CI)."""
        self._paused.set()

    def resume(self) -> None:
        self._paused.clear()

    def stats(self) -> dict[str, Any]:
        with self._counters_lock:
            rejected, failed = self._rejected, self._failed
        return {
            "queue_depth": self._queue.qsize(),
            "queue_size": self.queue_size,
            "paused": self._paused.is_set(),
            "rejected_batches": rejected,
            "failed_batches": failed,
            "attributes": self.registry.stats(),
        }
