"""Privacy substrates: Laplace mechanism, priors, PIE model, LDP checks."""

from .laplace import laplace_mechanism, laplace_noise_scale, laplace_perturbed_histogram
from .ldp import (
    empirical_probability_ratio,
    grr_style_ratio,
    ldp_bound,
    satisfies_ldp,
    ue_style_ratio,
)
from .pie import (
    PIEBudget,
    alpha_for_bayes_error,
    alpha_from_epsilon,
    bayes_error_lower_bound,
    epsilon_for_alpha,
    pie_budget_for_attribute,
)
from .priors import (
    INCORRECT_PRIORS,
    correct_priors,
    dirichlet_priors,
    exponential_priors,
    make_priors,
    uniform_priors,
    zipf_priors,
)

__all__ = [
    "laplace_mechanism",
    "laplace_noise_scale",
    "laplace_perturbed_histogram",
    "ldp_bound",
    "grr_style_ratio",
    "ue_style_ratio",
    "satisfies_ldp",
    "empirical_probability_ratio",
    "PIEBudget",
    "alpha_from_epsilon",
    "bayes_error_lower_bound",
    "alpha_for_bayes_error",
    "epsilon_for_alpha",
    "pie_budget_for_attribute",
    "correct_priors",
    "uniform_priors",
    "dirichlet_priors",
    "zipf_priors",
    "exponential_priors",
    "make_priors",
    "INCORRECT_PRIORS",
]
