"""PIE (Personal Information Entropy) privacy model (Appendix C).

Murakami & Takahashi (2021) proposed a relaxation of LDP that directly
bounds re-identification risk: an obfuscation mechanism provides
``(U, alpha)``-PIE privacy if the mutual information between the user and
the perturbed output is at most ``alpha`` bits.  The paper uses two results:

* **Proposition 1** — an ``epsilon``-LDP mechanism provides
  ``alpha = min(eps * log2(e), eps^2 * log2(e), log2(n), log2(k_j))``-PIE.
* **Corollary 1** — under ``alpha``-PIE the Bayes error of re-identification
  satisfies ``beta >= 1 - (alpha + 1) / log2(n)``.

The appendix experiments parameterize privacy by the target Bayes error
``beta_{U|S}``; this module provides the inversion ``beta -> alpha -> eps``
and the rule that, when ``log2(k_j) <= alpha``, the value may be reported in
the clear (no local randomizer is needed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.composition import validate_epsilon
from ..exceptions import InvalidParameterError

_LOG2_E = math.log2(math.e)


def alpha_from_epsilon(epsilon: float, n: int, k: int) -> float:
    """Proposition 1: PIE bound ``alpha`` of an ``epsilon``-LDP mechanism."""
    epsilon = validate_epsilon(epsilon)
    if n < 2:
        raise InvalidParameterError("n must be >= 2")
    if k < 2:
        raise InvalidParameterError("k must be >= 2")
    return min(
        epsilon * _LOG2_E,
        epsilon * epsilon * _LOG2_E,
        math.log2(n),
        math.log2(k),
    )


def bayes_error_lower_bound(alpha: float, n: int) -> float:
    """Corollary 1: ``beta >= 1 - (alpha + 1) / log2(n)`` (clipped to [0, 1])."""
    if alpha < 0:
        raise InvalidParameterError("alpha must be non-negative")
    if n < 2:
        raise InvalidParameterError("n must be >= 2")
    return max(0.0, min(1.0, 1.0 - (alpha + 1.0) / math.log2(n)))


def alpha_for_bayes_error(beta: float, n: int) -> float:
    """Invert Corollary 1: the largest ``alpha`` ensuring Bayes error ``beta``.

    ``alpha = (1 - beta) * log2(n) - 1`` (never negative).
    """
    if not 0.0 <= beta <= 1.0:
        raise InvalidParameterError("beta must be in [0, 1]")
    if n < 2:
        raise InvalidParameterError("n must be >= 2")
    return max(0.0, (1.0 - beta) * math.log2(n) - 1.0)


def epsilon_for_alpha(alpha: float) -> float:
    """Smallest LDP budget whose PIE bound reaches ``alpha`` (ignoring n, k).

    Inverts ``min(eps, eps^2) * log2(e) = alpha``: for ``alpha * ln 2 >= 1``
    the binding term is ``eps`` itself, otherwise ``eps^2``.
    """
    if alpha < 0:
        raise InvalidParameterError("alpha must be non-negative")
    if alpha == 0:
        return 0.0
    nat = alpha / _LOG2_E  # alpha expressed in nats
    return nat if nat >= 1.0 else math.sqrt(nat)


@dataclass(frozen=True)
class PIEBudget:
    """Privacy configuration of one attribute under the PIE model.

    Attributes
    ----------
    alpha:
        Target PIE bound in bits.
    epsilon:
        LDP budget to use when a randomizer is needed (0 when reporting in
        the clear).
    report_in_clear:
        ``True`` when ``log2(k_j) <= alpha`` — per Murakami & Takahashi's
        Proposition 9, no local randomizer is needed because the attribute's
        entropy already satisfies the PIE bound.
    """

    alpha: float
    epsilon: float
    report_in_clear: bool


def pie_budget_for_attribute(beta: float, n: int, k: int) -> PIEBudget:
    """Privacy budget of one attribute for a target Bayes error ``beta``.

    This is the procedure used by the appendix experiments (Figs. 12-13):
    derive ``alpha`` from ``beta`` and ``n``; if the attribute's domain is
    small enough (``log2(k) <= alpha``) report the raw value, otherwise run an
    LDP protocol with ``epsilon = epsilon_for_alpha(alpha)``.
    """
    if k < 2:
        raise InvalidParameterError("k must be >= 2")
    alpha = alpha_for_bayes_error(beta, n)
    if math.log2(k) <= alpha:
        return PIEBudget(alpha=alpha, epsilon=0.0, report_in_clear=True)
    epsilon = epsilon_for_alpha(alpha)
    return PIEBudget(alpha=alpha, epsilon=epsilon, report_in_clear=False)
