"""LDP-definition helpers and verification utilities.

These helpers make the ``epsilon``-LDP guarantee of Definition 1 checkable in
tests: for the randomized-response style protocols implemented here, the
worst-case output-probability ratio is determined by the ``p``/``q``
parameters, and the empirical output distributions of two inputs can be
compared directly on finite domains.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.composition import validate_epsilon
from ..exceptions import InvalidParameterError


def ldp_bound(epsilon: float) -> float:
    """Maximum allowed probability ratio ``e^epsilon``."""
    return math.exp(validate_epsilon(epsilon))


def grr_style_ratio(p: float, q: float) -> float:
    """Worst-case probability ratio of a GRR-style mechanism: ``p / q``."""
    if not (0.0 < q <= p < 1.0 or (0.0 < q < 1.0 and p == 1.0)):
        raise InvalidParameterError("require 0 < q <= p <= 1")
    return p / q


def ue_style_ratio(p: float, q: float) -> float:
    """Worst-case probability ratio of a UE-style mechanism.

    Each bit is independently reported, and two inputs differ in exactly two
    bit positions, so the worst case ratio is ``p (1-q) / ((1-p) q)``.
    """
    if not (0.0 < p < 1.0 and 0.0 < q < 1.0):
        raise InvalidParameterError("require p, q in (0, 1)")
    return p * (1.0 - q) / ((1.0 - p) * q)


def satisfies_ldp(ratio: float, epsilon: float, tolerance: float = 1e-9) -> bool:
    """Check ``ratio <= e^epsilon`` up to a numerical tolerance."""
    return ratio <= ldp_bound(epsilon) * (1.0 + tolerance)


def empirical_probability_ratio(
    outputs_a: np.ndarray, outputs_b: np.ndarray, num_outputs: int
) -> float:
    """Largest ratio between the empirical output distributions of two inputs.

    Both output samples must be integer-coded in ``[0, num_outputs)``.  Only
    outputs observed for both inputs contribute (the estimator is intended
    for smoke-testing LDP mechanisms with many samples, not as a proof).
    """
    if num_outputs < 2:
        raise InvalidParameterError("num_outputs must be >= 2")
    histogram_a = np.bincount(np.asarray(outputs_a, dtype=np.int64), minlength=num_outputs)
    histogram_b = np.bincount(np.asarray(outputs_b, dtype=np.int64), minlength=num_outputs)
    freq_a = histogram_a / max(1, histogram_a.sum())
    freq_b = histogram_b / max(1, histogram_b.sum())
    mask = (freq_a > 0) & (freq_b > 0)
    if not mask.any():
        return math.inf
    ratios = np.maximum(freq_a[mask] / freq_b[mask], freq_b[mask] / freq_a[mask])
    return float(ratios.max())
