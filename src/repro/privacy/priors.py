"""Prior distributions used by the RS+RFD countermeasure.

The RS+RFD solution generates realistic fake data from per-attribute prior
distributions ``f~``.  The paper's experiments use:

* **Correct** priors — the true frequencies perturbed with a central-DP
  Laplace mechanism at ``epsilon = 0.1 / d`` per attribute (Sec. 5.2.1);
* **Incorrect** priors — deliberately wrong distributions:

  - ``DIR`` — a Dirichlet(1) draw (uniform over the simplex);
  - ``ZIPF`` — the histogram of 100,000 Zipf(s = 1.01) samples folded into
    ``k_j`` buckets;
  - ``EXP`` — the histogram of 100,000 Exponential(λ = 1) samples folded into
    ``k_j`` buckets.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.dataset import TabularDataset
from ..core.rng import RngLike, ensure_rng
from ..exceptions import InvalidParameterError
from .laplace import laplace_perturbed_histogram

#: Number of samples the paper draws to build ZIPF / EXP histogram priors.
_HISTOGRAM_SAMPLES = 100_000


def correct_priors(
    dataset: TabularDataset,
    total_epsilon: float = 0.1,
    rng: RngLike = None,
) -> list[np.ndarray]:
    """"Correct" priors: Laplace-perturbed true frequencies.

    The total central-DP budget ``total_epsilon`` is split evenly over the
    ``d`` attributes, as in the paper (``epsilon = 0.1 / d``).
    """
    generator = ensure_rng(rng)
    per_attribute = total_epsilon / dataset.d
    return [
        laplace_perturbed_histogram(
            dataset.frequencies(j), per_attribute, dataset.n, rng=generator
        )
        for j in range(dataset.d)
    ]


def dirichlet_priors(sizes: Sequence[int], rng: RngLike = None) -> list[np.ndarray]:
    """"Incorrect" DIR priors: independent Dirichlet(1) draws per attribute."""
    generator = ensure_rng(rng)
    return [generator.dirichlet(np.ones(int(k))) for k in _validated_sizes(sizes)]


def zipf_priors(
    sizes: Sequence[int], s: float = 1.01, rng: RngLike = None
) -> list[np.ndarray]:
    """"Incorrect" ZIPF priors: Zipf(s) samples folded into ``k_j`` buckets."""
    if s <= 1.0:
        raise InvalidParameterError("the Zipf exponent s must be > 1")
    generator = ensure_rng(rng)
    priors = []
    for k in _validated_sizes(sizes):
        samples = generator.zipf(s, size=_HISTOGRAM_SAMPLES)
        priors.append(_histogram_prior(samples, k))
    return priors


def exponential_priors(
    sizes: Sequence[int], rate: float = 1.0, rng: RngLike = None
) -> list[np.ndarray]:
    """"Incorrect" EXP priors: Exponential(rate) samples folded into buckets."""
    if rate <= 0:
        raise InvalidParameterError("rate must be positive")
    generator = ensure_rng(rng)
    priors = []
    for k in _validated_sizes(sizes):
        samples = generator.exponential(scale=1.0 / rate, size=_HISTOGRAM_SAMPLES)
        priors.append(_histogram_prior(samples, k))
    return priors


def uniform_priors(sizes: Sequence[int]) -> list[np.ndarray]:
    """Uniform priors (equivalent to the original RS+FD fake data)."""
    return [np.full(int(k), 1.0 / int(k)) for k in _validated_sizes(sizes)]


def _validated_sizes(sizes: Sequence[int]) -> list[int]:
    sizes = [int(k) for k in sizes]
    if not sizes or any(k < 2 for k in sizes):
        raise InvalidParameterError("sizes must be non-empty with every k >= 2")
    return sizes


def _histogram_prior(samples: np.ndarray, k: int) -> np.ndarray:
    """Fold continuous / unbounded samples into a ``k``-bucket histogram."""
    samples = np.asarray(samples, dtype=float)
    low, high = samples.min(), samples.max()
    if high <= low:
        return np.full(k, 1.0 / k)
    counts, _ = np.histogram(samples, bins=k, range=(low, high))
    counts = counts.astype(float)
    # avoid exactly-zero probabilities so sampling stays well-defined
    counts += 1e-9
    return counts / counts.sum()


#: Generators of "Incorrect" priors by the paper's names.
INCORRECT_PRIORS: Mapping[str, Callable[..., list[np.ndarray]]] = {
    "DIR": dirichlet_priors,
    "ZIPF": zipf_priors,
    "EXP": exponential_priors,
}


def make_priors(
    kind: str,
    dataset: TabularDataset,
    rng: RngLike = None,
    total_epsilon: float = 0.1,
) -> list[np.ndarray]:
    """Build priors of ``kind`` for ``dataset``.

    ``kind`` is one of ``"exact"`` (the true frequencies, an idealized
    best-case prior), ``"correct"`` (Laplace-perturbed true frequencies, as in
    the paper), ``"uniform"``, ``"dir"``, ``"zipf"`` or ``"exp"``
    (case-insensitive).
    """
    key = kind.strip().upper()
    if key == "EXACT":
        return dataset.all_frequencies()
    if key == "CORRECT":
        return correct_priors(dataset, total_epsilon=total_epsilon, rng=rng)
    if key == "UNIFORM":
        return uniform_priors(dataset.sizes)
    if key in INCORRECT_PRIORS:
        return INCORRECT_PRIORS[key](dataset.sizes, rng=rng)
    raise InvalidParameterError(
        f"unknown prior kind {kind!r}; expected exact/correct/uniform/dir/zipf/exp"
    )
