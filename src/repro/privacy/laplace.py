"""Central-DP Laplace mechanism.

The RS+RFD evaluation simulates "Correct" prior distributions by perturbing
the true per-attribute frequencies with the standard Laplace mechanism of
central differential privacy, using a total budget of ``epsilon = 0.1``
split over the ``d`` attributes (Sec. 5.2.1).
"""

from __future__ import annotations

import numpy as np

from ..core.composition import validate_epsilon
from ..core.rng import RngLike, ensure_rng
from ..exceptions import InvalidParameterError


def laplace_noise_scale(epsilon: float, sensitivity: float = 1.0) -> float:
    """Scale ``b = sensitivity / epsilon`` of the Laplace mechanism."""
    epsilon = validate_epsilon(epsilon)
    if sensitivity <= 0:
        raise InvalidParameterError("sensitivity must be positive")
    return sensitivity / epsilon


def laplace_mechanism(
    values: np.ndarray,
    epsilon: float,
    sensitivity: float = 1.0,
    rng: RngLike = None,
) -> np.ndarray:
    """Add Laplace noise calibrated to ``sensitivity / epsilon`` to ``values``."""
    generator = ensure_rng(rng)
    values = np.asarray(values, dtype=float)
    scale = laplace_noise_scale(epsilon, sensitivity)
    return values + generator.laplace(loc=0.0, scale=scale, size=values.shape)


def laplace_perturbed_histogram(
    frequencies: np.ndarray,
    epsilon: float,
    n: int,
    rng: RngLike = None,
) -> np.ndarray:
    """DP-perturb a normalized histogram and re-normalize it.

    The histogram counts ``n * f`` have L1 sensitivity 1 under user
    add/remove, so noise of scale ``1 / epsilon`` is added to the counts; the
    result is clipped to be non-negative and normalized back to a
    distribution.  Returns a valid probability vector (uniform fallback if
    everything was clipped away).
    """
    if n <= 0:
        raise InvalidParameterError("n must be positive")
    frequencies = np.asarray(frequencies, dtype=float)
    counts = frequencies * n
    noisy = laplace_mechanism(counts, epsilon, sensitivity=1.0, rng=rng)
    noisy = np.clip(noisy, 0.0, None)
    total = noisy.sum()
    if total <= 0:
        return np.full(frequencies.shape, 1.0 / frequencies.size)
    return noisy / total
