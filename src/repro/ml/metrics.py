"""Classification metrics for the ML substrate."""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact matches between ``y_true`` and ``y_pred``."""
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape:
        raise InvalidParameterError("y_true and y_pred must have the same shape")
    if y_true.size == 0:
        raise InvalidParameterError("cannot compute accuracy on empty arrays")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int | None = None) -> np.ndarray:
    """Confusion matrix ``M[i, j]`` = count of true class ``i`` predicted ``j``."""
    y_true = np.asarray(y_true, dtype=np.int64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.int64).ravel()
    if y_true.shape != y_pred.shape:
        raise InvalidParameterError("y_true and y_pred must have the same shape")
    if n_classes is None:
        n_classes = int(max(y_true.max(initial=0), y_pred.max(initial=0))) + 1
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def per_class_recall(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int | None = None) -> np.ndarray:
    """Recall of each class (0 where the class never appears)."""
    matrix = confusion_matrix(y_true, y_pred, n_classes)
    totals = matrix.sum(axis=1)
    recall = np.zeros(matrix.shape[0], dtype=float)
    nonzero = totals > 0
    recall[nonzero] = np.diag(matrix)[nonzero] / totals[nonzero]
    return recall
