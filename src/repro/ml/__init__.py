"""ML substrate: from-scratch classifiers replacing XGBoost."""

from .encoding import count_threshold_features, encode_dataset_rows, encode_reports, one_hot_columns
from .gradient_boosting import GradientBoostingClassifier, softmax
from .metrics import accuracy_score, confusion_matrix, per_class_recall
from .naive_bayes import BernoulliNaiveBayes
from .tree import BinaryFeatureRegressionTree, grow_forest
from .tree_reference import RecursiveBinaryFeatureRegressionTree

__all__ = [
    "BinaryFeatureRegressionTree",
    "RecursiveBinaryFeatureRegressionTree",
    "grow_forest",
    "GradientBoostingClassifier",
    "BernoulliNaiveBayes",
    "softmax",
    "accuracy_score",
    "confusion_matrix",
    "per_class_recall",
    "encode_reports",
    "encode_dataset_rows",
    "one_hot_columns",
    "count_threshold_features",
]
