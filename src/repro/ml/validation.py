"""Shared input validation for the ML substrate.

The tree, gradient-boosting and naive-Bayes models all consume the same kind
of input — a 2-D (binary) feature matrix plus an aligned per-row target — so
the checks live here once instead of being re-implemented (and drifting) in
every model.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError

#: Feature dtypes accepted without copying.  Binary features are exact in
#: every floating dtype, so callers may pre-convert once (e.g. the boosting
#: loop converts to float64 a single time for all of its trees).
_ACCEPTED_FLOAT_DTYPES = (np.float32, np.float64)


def validate_feature_matrix(
    features: np.ndarray, dtype: type | None = None
) -> np.ndarray:
    """Validate a 2-D feature matrix, converting the dtype only when needed.

    ``dtype=None`` keeps any floating dtype as-is (no copy) and converts
    integer/boolean inputs to float32; an explicit ``dtype`` forces that
    dtype.
    """
    features = np.asarray(features)
    if features.ndim != 2:
        raise InvalidParameterError("features must be a 2-D array")
    if dtype is not None:
        return np.asarray(features, dtype=dtype)
    if features.dtype not in _ACCEPTED_FLOAT_DTYPES:
        return features.astype(np.float32)
    return features


def validate_aligned_targets(
    features: np.ndarray, *targets: np.ndarray, names: str = "targets"
) -> None:
    """Check that every target array has one entry per feature row."""
    for target in targets:
        if target.shape[0] != features.shape[0]:
            raise InvalidParameterError(f"features and {names} must align")


def validate_labels(features: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, int]:
    """Validate integer class labels; returns ``(labels, n_classes)``."""
    labels = np.asarray(labels, dtype=np.int64).ravel()
    validate_aligned_targets(features, labels, names="labels")
    if labels.size and labels.min() < 0:
        raise InvalidParameterError("labels must be non-negative integers")
    n_classes = int(labels.max()) + 1 if labels.size else 0
    if n_classes < 2:
        raise InvalidParameterError("at least two classes are required")
    return labels, n_classes
