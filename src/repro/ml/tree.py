"""Regression trees on binary features for gradient boosting.

The attribute-inference attack of the paper trains an XGBoost multiclass
classifier.  This reproduction has no network access, so the classifier is
rebuilt from scratch: :class:`BinaryFeatureRegressionTree` is the base
learner of the gradient-boosting machine in
:mod:`repro.ml.gradient_boosting`.

All features are binary (the encoders in :mod:`repro.ml.encoding` produce
one-hot / indicator features), which makes the split search a single matrix
product per node: the gradient and hessian sums of the "feature == 1" branch
are ``X^T g`` and ``X^T h``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import InvalidParameterError, NotFittedError


@dataclass
class _Node:
    """One node of the fitted tree (internal or leaf)."""

    feature: int = -1
    left: int = -1
    right: int = -1
    value: float = 0.0
    is_leaf: bool = True


class BinaryFeatureRegressionTree:
    """Depth-limited regression tree over binary features.

    The tree minimizes the second-order boosting objective: each leaf outputs
    ``-G / (H + reg_lambda)`` and splits are chosen by the usual XGBoost-style
    gain formula.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_leaf:
        Minimum number of samples required in each child.
    reg_lambda:
        L2 regularization on leaf values.
    min_gain:
        Minimum gain required to split a node.
    """

    def __init__(
        self,
        max_depth: int = 4,
        min_samples_leaf: int = 10,
        reg_lambda: float = 1.0,
        min_gain: float = 1e-6,
    ) -> None:
        if max_depth < 1:
            raise InvalidParameterError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise InvalidParameterError("min_samples_leaf must be >= 1")
        if reg_lambda < 0:
            raise InvalidParameterError("reg_lambda must be non-negative")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.min_gain = min_gain
        self._nodes: list[_Node] = []

    # ------------------------------------------------------------------ #
    def fit(
        self, features: np.ndarray, gradients: np.ndarray, hessians: np.ndarray
    ) -> "BinaryFeatureRegressionTree":
        """Fit the tree to per-sample gradients and hessians."""
        features = self._validate_features(features)
        gradients = np.asarray(gradients, dtype=float).ravel()
        hessians = np.asarray(hessians, dtype=float).ravel()
        if gradients.shape[0] != features.shape[0] or hessians.shape[0] != features.shape[0]:
            raise InvalidParameterError("features, gradients and hessians must align")
        self._nodes = []
        all_rows = np.arange(features.shape[0])
        self._build(features, gradients, hessians, all_rows, depth=0)
        return self

    def _build(
        self,
        features: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
        rows: np.ndarray,
        depth: int,
    ) -> int:
        """Recursively build the subtree for ``rows``; return its node index."""
        node_index = len(self._nodes)
        self._nodes.append(_Node())
        grad_total = float(gradients[rows].sum())
        hess_total = float(hessians[rows].sum())
        leaf_value = -grad_total / (hess_total + self.reg_lambda)

        if depth >= self.max_depth or rows.size < 2 * self.min_samples_leaf:
            self._nodes[node_index] = _Node(value=leaf_value, is_leaf=True)
            return node_index

        feature_block = features[rows]
        grad_ones = feature_block.T @ gradients[rows]
        hess_ones = feature_block.T @ hessians[rows]
        count_ones = feature_block.sum(axis=0)
        grad_zeros = grad_total - grad_ones
        hess_zeros = hess_total - hess_ones
        count_zeros = rows.size - count_ones

        def score(grad: np.ndarray, hess: np.ndarray) -> np.ndarray:
            denominator = hess + self.reg_lambda
            with np.errstate(divide="ignore", invalid="ignore"):
                value = grad * grad / denominator
            return np.where(denominator > 0, value, 0.0)

        gains = 0.5 * (
            score(grad_ones, hess_ones)
            + score(grad_zeros, hess_zeros)
            - score(np.asarray(grad_total), np.asarray(hess_total))
        )
        valid = (count_ones >= self.min_samples_leaf) & (count_zeros >= self.min_samples_leaf)
        gains = np.where(valid, gains, -np.inf)
        best_feature = int(np.argmax(gains))
        if not np.isfinite(gains[best_feature]) or gains[best_feature] < self.min_gain:
            self._nodes[node_index] = _Node(value=leaf_value, is_leaf=True)
            return node_index

        mask = feature_block[:, best_feature] > 0.5
        right_rows = rows[mask]
        left_rows = rows[~mask]
        left_index = self._build(features, gradients, hessians, left_rows, depth + 1)
        right_index = self._build(features, gradients, hessians, right_rows, depth + 1)
        self._nodes[node_index] = _Node(
            feature=best_feature,
            left=left_index,
            right=right_index,
            value=leaf_value,
            is_leaf=False,
        )
        return node_index

    # ------------------------------------------------------------------ #
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict the leaf value of every row of ``features``."""
        if not self._nodes:
            raise NotFittedError("tree is not fitted")
        features = self._validate_features(features)
        output = np.empty(features.shape[0], dtype=float)
        self._predict_node(0, features, np.arange(features.shape[0]), output)
        return output

    def _predict_node(
        self, node_index: int, features: np.ndarray, rows: np.ndarray, output: np.ndarray
    ) -> None:
        node = self._nodes[node_index]
        if node.is_leaf or rows.size == 0:
            output[rows] = node.value
            return
        mask = features[rows, node.feature] > 0.5
        self._predict_node(node.left, features, rows[~mask], output)
        self._predict_node(node.right, features, rows[mask], output)

    # ------------------------------------------------------------------ #
    @property
    def node_count(self) -> int:
        """Number of nodes in the fitted tree."""
        return len(self._nodes)

    @staticmethod
    def _validate_features(features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float32)
        if features.ndim != 2:
            raise InvalidParameterError("features must be a 2-D array")
        return features
