"""Regression trees on binary features for gradient boosting.

The attribute-inference attack of the paper trains an XGBoost multiclass
classifier.  This reproduction has no network access, so the classifier is
rebuilt from scratch: :class:`BinaryFeatureRegressionTree` is the base
learner of the gradient-boosting machine in
:mod:`repro.ml.gradient_boosting`.

All features are binary (the encoders in :mod:`repro.ml.encoding` produce
one-hot / indicator features), which makes the split search a single matrix
product: the gradient and hessian sums of the "feature == 1" branch of a
node are ``X^T (g * 1[sample in node])``.

Trees are grown **level-wise**: instead of recursing node by node (and
fancy-indexing a fresh copy of the feature block at every node, as the
reference implementation in :mod:`repro.ml.tree_reference` does), the
builder keeps one per-sample node-slot array and computes the
gradient/hessian/count histograms of *every* frontier node in a single
``X^T W`` product over the original feature matrix, where ``W`` scatters
``(g, h, 1)`` into one column triple per frontier node.  Best splits for the
whole frontier are chosen at once and samples are routed with boolean masks.

Because that product is memory-bound on streaming ``X`` (its cost barely
depends on the number of weight columns), :func:`grow_forest` grows many
trees over the same feature matrix in lockstep — one shared histogram
product per level for the whole group.  The boosting loop uses this to build
all ``n_classes`` trees of a round with a single pass over ``X`` per level.

Fitted trees are flat ``feature/left/right/value`` arrays in breadth-first
order, so prediction is an iterative batched node-index propagation with no
recursion and no per-sample dispatch.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError, NotFittedError
from ..kernels import get_backend
from .validation import validate_aligned_targets, validate_feature_matrix


def _validate_hyperparameters(
    max_depth: int, min_samples_leaf: int, reg_lambda: float
) -> None:
    if max_depth < 1:
        raise InvalidParameterError("max_depth must be >= 1")
    if min_samples_leaf < 1:
        raise InvalidParameterError("min_samples_leaf must be >= 1")
    if reg_lambda < 0:
        raise InvalidParameterError("reg_lambda must be non-negative")


class BinaryFeatureRegressionTree:
    """Depth-limited regression tree over binary features, grown level-wise.

    The tree minimizes the second-order boosting objective: each leaf outputs
    ``-G / (H + reg_lambda)`` and splits are chosen by the usual XGBoost-style
    gain formula.  Splits, tie-breaking (first feature with the maximal gain)
    and stopping rules match the recursive reference implementation
    (:class:`repro.ml.tree_reference.RecursiveBinaryFeatureRegressionTree`)
    exactly up to floating-point summation order.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_leaf:
        Minimum number of samples required in each child.
    reg_lambda:
        L2 regularization on leaf values.
    min_gain:
        Minimum gain required to split a node.
    """

    def __init__(
        self,
        max_depth: int = 4,
        min_samples_leaf: int = 10,
        reg_lambda: float = 1.0,
        min_gain: float = 1e-6,
    ) -> None:
        _validate_hyperparameters(max_depth, min_samples_leaf, reg_lambda)
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.min_gain = min_gain
        # flat breadth-first node arrays; feature == -1 marks a leaf
        self._feature: np.ndarray | None = None
        self._left: np.ndarray | None = None
        self._right: np.ndarray | None = None
        self._value: np.ndarray | None = None
        # navigation copies with self-looping leaves (see ``apply``)
        self._nav_left: np.ndarray | None = None
        self._nav_right: np.ndarray | None = None
        self._levels = 0

    # ------------------------------------------------------------------ #
    def fit(
        self, features: np.ndarray, gradients: np.ndarray, hessians: np.ndarray
    ) -> "BinaryFeatureRegressionTree":
        """Fit the tree to per-sample gradients and hessians."""
        gradients = np.asarray(gradients, dtype=np.float64).ravel()
        hessians = np.asarray(hessians, dtype=np.float64).ravel()
        fitted = grow_forest(
            features,
            gradients[:, None],
            hessians[:, None],
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            reg_lambda=self.reg_lambda,
            min_gain=self.min_gain,
        )[0]
        self._adopt(
            fitted._feature, fitted._left, fitted._right, fitted._value,
            levels=fitted._levels,
        )
        return self

    def _adopt(
        self,
        feature: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        value: np.ndarray,
        levels: int,
    ) -> None:
        """Install fitted flat node arrays and derive navigation helpers."""
        self._feature = feature
        self._left = left
        self._right = right
        self._value = value
        self._levels = levels
        # leaves navigate to themselves, so batched propagation needs no
        # per-row "is this row done" bookkeeping
        node_ids = np.arange(feature.size, dtype=np.int32)
        internal = feature >= 0
        self._nav_left = np.where(internal, left, node_ids).astype(np.int32)
        self._nav_right = np.where(internal, right, node_ids).astype(np.int32)

    # ------------------------------------------------------------------ #
    def predict(
        self, features: np.ndarray, features_t: np.ndarray | None = None
    ) -> np.ndarray:
        """Predict the leaf value of every row of ``features``."""
        return self._value[self.apply(features, features_t)]

    def predict_into(
        self,
        features: np.ndarray,
        out: np.ndarray,
        scale: float = 1.0,
        features_t: np.ndarray | None = None,
    ) -> np.ndarray:
        """Accumulate ``scale * predict(features)`` into ``out`` in place.

        Lets the boosting loop reuse one score buffer across rounds and
        classes instead of allocating a fresh prediction array per tree.
        """
        out += scale * self._value[self.apply(features, features_t)]
        return out

    def apply(
        self, features: np.ndarray, features_t: np.ndarray | None = None
    ) -> np.ndarray:
        """Leaf index reached by every row — iterative batched propagation.

        No recursion and no per-sample dispatch: the bits of the (few)
        features the tree actually tests are extracted into one small
        cache-resident matrix, then every row's node index is advanced one
        level at a time with gather/where operations.

        ``features_t`` optionally supplies a C-contiguous ``features.T``;
        callers applying many trees to the same matrix (the boosting loop)
        pass it so each tree reads its test features from contiguous rows
        instead of strided columns.
        """
        if self._feature is None:
            raise NotFittedError("tree is not fitted")
        features = validate_feature_matrix(features)
        n = features.shape[0]
        internal = self._feature >= 0
        if not internal.any():
            return np.zeros(n, dtype=np.int32)
        used, inverse = np.unique(self._feature[internal], return_inverse=True)
        # bit matrix of the tested features only: (n_used, n) fits in cache
        if features_t is not None:
            bits = features_t[used] > 0.5
        else:
            bits = (features[:, used] > 0.5).T
        # row into ``bits`` per node (leaves keep a harmless 0)
        bit_row = np.zeros(self._feature.size, dtype=np.int32)
        bit_row[internal] = inverse.astype(np.int32)

        node = np.zeros(n, dtype=np.int32)
        sample = np.arange(n, dtype=np.int64)
        # leaves self-loop in the navigation arrays, so exactly levels - 1
        # hops land every row at its leaf
        for _ in range(self._levels - 1):
            goes_right = bits[bit_row[node], sample]
            node = np.where(goes_right, self._nav_right[node], self._nav_left[node])
        return node

    # ------------------------------------------------------------------ #
    @property
    def node_count(self) -> int:
        """Number of nodes in the fitted tree."""
        return 0 if self._feature is None else int(self._feature.size)

    def structure(self) -> dict[str, np.ndarray]:
        """Flat breadth-first node arrays (``feature/left/right/value``).

        Leaves have ``feature == left == right == -1``.  The same layout is
        produced by the recursive reference tree, making structures directly
        comparable in the parity tests.
        """
        if self._feature is None:
            raise NotFittedError("tree is not fitted")
        return {
            "feature": self._feature.copy(),
            "left": self._left.copy(),
            "right": self._right.copy(),
            "value": self._value.copy(),
        }


# --------------------------------------------------------------------------- #
# lockstep level-wise growth
# --------------------------------------------------------------------------- #
class _TreeGrower:
    """Level-wise growth state of one tree inside a lockstep group.

    The driver (:func:`grow_forest`) calls ``begin_level`` on every grower to
    learn how many weight columns it needs, builds one shared weight matrix,
    runs the single ``X^T W`` histogram product and hands each grower its
    column block via ``finish_level``.

    Two classic histogram tricks keep the per-level work small:

    * **sibling subtraction** — when both children of a split need
      histograms, only the smaller child's is computed; the sibling's is the
      parent's histogram minus it, so levels past the root scatter/multiply
      roughly half of the frontier's samples;
    * **derived totals** — each child's gradient/hessian/count totals are
      read off the parent's histogram at the chosen split feature (ones
      branch) or derived by subtraction (zeros branch), so no per-level
      ``bincount`` passes over the samples are needed.

    Counts are integer-valued and below 2**53, so every subtraction above is
    exact; gradient/hessian subtractions differ from direct summation only
    in floating-point rounding order.
    """

    def __init__(
        self,
        gradients: np.ndarray,
        hessians: np.ndarray,
        max_depth: int,
        min_samples_leaf: int,
        reg_lambda: float,
        min_gain: float,
    ) -> None:
        self.gradients = gradients
        self.hessians = hessians
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.min_gain = min_gain
        n = gradients.shape[0]
        self.rows = np.arange(n)  # active samples (original row indices)
        self.slot = np.zeros(n, dtype=np.int64)  # frontier slot per active sample
        self.n_slots = 1
        # root totals are the only ones computed by direct summation
        self.grad_tot = np.asarray([gradients.sum()])
        self.hess_tot = np.asarray([hessians.sum()])
        self.count_tot = np.asarray([float(n)])
        # histograms of the previous level's splitting slots, (n_split, F)
        self.parent_hist: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self.next_node = 1  # node 0 is the root
        self.frontier_first = 0  # node index of this level's first slot
        self.done = False
        # leaf node reached by every training sample, filled as samples are
        # retired; lets the boosting loop skip re-applying the tree to the
        # training matrix entirely
        self.leaf_of = np.empty(n, dtype=np.int32)
        self.feature_parts: list[np.ndarray] = []
        self.left_parts: list[np.ndarray] = []
        self.right_parts: list[np.ndarray] = []
        self.value_parts: list[np.ndarray] = []

    # -- per-level protocol --------------------------------------------------
    def begin_level(self, depth: int) -> int:
        """Leaf decisions + histogram planning; returns weight rows needed."""
        if self.done:
            return 0
        self.frontier_first = self.next_node - self.n_slots
        with np.errstate(divide="ignore", invalid="ignore"):
            self.leaf_value = -self.grad_tot / (self.hess_tot + self.reg_lambda)
        self.node_feature = np.full(self.n_slots, -1, dtype=np.int32)
        self.node_left = np.full(self.n_slots, -1, dtype=np.int32)
        self.node_right = np.full(self.n_slots, -1, dtype=np.int32)

        can_split = self.count_tot >= 2 * self.min_samples_leaf
        if depth >= self.max_depth or not can_split.any():
            self.leaf_of[self.rows] = self.frontier_first + self.slot
            self._emit_level()
            self.done = True
            return 0

        # drop samples sitting in slots that are already leaves (recording
        # their leaf) and renumber the remaining splittable slots compactly
        keep = can_split[self.slot]
        if not keep.all():
            dropped = self.rows[~keep]
            self.leaf_of[dropped] = self.frontier_first + self.slot[~keep]
        self.rows = self.rows[keep]
        sub_of_slot = np.cumsum(can_split) - 1
        self.sub = sub_of_slot[self.slot[keep]]
        self.n_sub = int(can_split.sum())
        self.can_split = can_split
        self.sub_of_slot = sub_of_slot
        self.grad_sub = self.grad_tot[can_split]
        self.hess_sub = self.hess_tot[can_split]
        self.count_sub = self.count_tot[can_split]

        # choose which splittable slots get a computed histogram: the root
        # always does; otherwise a slot computes unless its sibling is also
        # splittable and strictly smaller (ties computed on the left child),
        # in which case its histogram is derived as parent minus sibling
        slots = np.flatnonzero(can_split)
        if self.parent_hist is None:
            computed = np.ones(slots.size, dtype=bool)
        else:
            siblings = slots ^ 1
            sibling_splittable = can_split[siblings]
            own_count = self.count_tot[slots]
            sibling_count = self.count_tot[siblings]
            computed = ~sibling_splittable | (
                (own_count < sibling_count)
                | ((own_count == sibling_count) & (slots % 2 == 0))
            )
        self.computed = computed
        self.n_comp = int(computed.sum())
        # compact column index among computed slots, indexed by sub
        comp_of_sub = np.cumsum(computed) - 1
        self.comp_of_sub = comp_of_sub
        return 3 * self.n_comp

    def scatter(self, weights_t: np.ndarray, offset: int) -> None:
        """Write the ``(g, h, 1)`` row triples of computed slots.

        ``weights_t`` is the transposed ``(rows, n)`` weight buffer — one row
        per histogram column — so the per-sample writes land in a few
        contiguous rows instead of striding across a wide matrix.
        """
        if self.n_comp == self.n_sub:
            rows, comp = self.rows, self.sub
        else:
            mask = self.computed[self.sub]
            rows = self.rows[mask]
            comp = self.comp_of_sub[self.sub[mask]]
        if self.n_comp == 1 and rows.size == self.gradients.shape[0]:
            # root level: plain contiguous copies
            weights_t[offset] = self.gradients
            weights_t[offset + 1] = self.hessians
            weights_t[offset + 2] = 1.0
            return
        weights_t[offset + comp, rows] = self.gradients[rows]
        weights_t[offset + self.n_comp + comp, rows] = self.hessians[rows]
        weights_t[offset + 2 * self.n_comp + comp, rows] = 1.0

    def finish_level(self, hist: np.ndarray, features64: np.ndarray) -> None:
        """Assemble full histograms, pick splits and route the samples.

        ``hist`` is this tree's ``(3 * n_comp, F)`` block of the shared
        histogram product, one row per computed slot triple.
        """
        n_sub, n_comp = self.n_sub, self.n_comp
        feature_count = hist.shape[1]
        grad_ones = np.empty((n_sub, feature_count))
        hess_ones = np.empty((n_sub, feature_count))
        count_ones = np.empty((n_sub, feature_count))
        comp_sub = np.flatnonzero(self.computed)
        grad_ones[comp_sub] = hist[:n_comp]
        hess_ones[comp_sub] = hist[n_comp : 2 * n_comp]
        count_ones[comp_sub] = hist[2 * n_comp :]
        derived_sub = np.flatnonzero(~self.computed)
        if derived_sub.size:
            # parent minus (already-filled) computed sibling
            slots = np.flatnonzero(self.can_split)
            derived_slots = slots[derived_sub]
            sibling_sub = self.sub_of_slot[derived_slots ^ 1]
            pair = derived_slots // 2
            parent_grad, parent_hess, parent_count = self.parent_hist
            grad_ones[derived_sub] = parent_grad[pair] - grad_ones[sibling_sub]
            hess_ones[derived_sub] = parent_hess[pair] - hess_ones[sibling_sub]
            count_ones[derived_sub] = parent_count[pair] - count_ones[sibling_sub]

        grad_zeros = self.grad_sub[:, None] - grad_ones
        hess_zeros = self.hess_sub[:, None] - hess_ones
        count_zeros = self.count_sub[:, None] - count_ones

        # the parent score is constant per slot, so the argmax over features
        # only needs the children's score sum; the parent term re-enters in
        # the min_gain threshold below
        score_sum = self._score(grad_ones, hess_ones) + self._score(
            grad_zeros, hess_zeros
        )
        valid = (count_ones >= self.min_samples_leaf) & (
            count_zeros >= self.min_samples_leaf
        )
        score_sum = np.where(valid, score_sum, -np.inf)
        best_feature = np.argmax(score_sum, axis=1)  # first max wins, per slot
        arange_sub = np.arange(n_sub)
        best_gain = 0.5 * (
            score_sum[arange_sub, best_feature]
            - self._score(self.grad_sub, self.hess_sub)
        )
        split = np.isfinite(best_gain) & (best_gain >= self.min_gain)

        n_split = int(split.sum())
        if n_split:
            # children of the j-th splitting slot (in slot order) get the
            # next-frontier slots (2j, 2j+1) and consecutive node indices
            split_rank = np.cumsum(split) - 1
            split_slots = np.flatnonzero(self.can_split)[split]
            self.node_feature[split_slots] = best_feature[split]
            self.node_left[split_slots] = self.next_node + 2 * split_rank[split]
            self.node_right[split_slots] = self.next_node + 2 * split_rank[split] + 1
            self.next_node += 2 * n_split
        self._emit_level()

        # retire the samples of non-splitting slots at their (leaf) node
        keep = split[self.sub]
        if not keep.all():
            slots = np.flatnonzero(self.can_split)
            dropped = ~keep
            self.leaf_of[self.rows[dropped]] = (
                self.frontier_first + slots[self.sub[dropped]]
            )
        if not n_split:
            self.done = True
            return

        # next level's totals come straight off the split histograms: the
        # ones branch (right child) is the histogram at the split feature,
        # the zeros branch (left child) follows by subtraction
        split_sub = np.flatnonzero(split)
        split_feature = best_feature[split]
        arange_split = np.arange(n_split)
        right_grad = grad_ones[split_sub, split_feature]
        right_hess = hess_ones[split_sub, split_feature]
        right_count = count_ones[split_sub, split_feature]
        next_grad = np.empty(2 * n_split)
        next_hess = np.empty(2 * n_split)
        next_count = np.empty(2 * n_split)
        next_grad[2 * arange_split] = self.grad_sub[split_sub] - right_grad
        next_grad[2 * arange_split + 1] = right_grad
        next_hess[2 * arange_split] = self.hess_sub[split_sub] - right_hess
        next_hess[2 * arange_split + 1] = right_hess
        next_count[2 * arange_split] = self.count_sub[split_sub] - right_count
        next_count[2 * arange_split + 1] = right_count
        self.grad_tot, self.hess_tot, self.count_tot = next_grad, next_hess, next_count
        self.parent_hist = (
            grad_ones[split_sub],
            hess_ones[split_sub],
            count_ones[split_sub],
        )

        # route the samples of splitting slots to their children; each child
        # holds >= min_samples_leaf samples by the validity mask above
        self.rows = self.rows[keep]
        sub = self.sub[keep]
        goes_right = features64[self.rows, best_feature[sub]] > 0.5
        self.slot = 2 * split_rank[sub] + goes_right
        self.n_slots = 2 * n_split

    # -- helpers -------------------------------------------------------------
    def _emit_level(self) -> None:
        self.feature_parts.append(self.node_feature)
        self.left_parts.append(self.node_left)
        self.right_parts.append(self.node_right)
        self.value_parts.append(self.leaf_value)

    def _score(self, grad: np.ndarray, hess: np.ndarray) -> np.ndarray:
        """XGBoost-style structure score ``G^2 / (H + lambda)``."""
        denominator = hess + self.reg_lambda
        with np.errstate(divide="ignore", invalid="ignore"):
            value = grad * grad / denominator
        return np.where(denominator > 0, value, 0.0)

    def build_tree(
        self,
        max_depth: int,
        min_samples_leaf: int,
        reg_lambda: float,
        min_gain: float,
    ) -> BinaryFeatureRegressionTree:
        tree = BinaryFeatureRegressionTree(
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            reg_lambda=reg_lambda,
            min_gain=min_gain,
        )
        tree._adopt(
            np.concatenate(self.feature_parts),
            np.concatenate(self.left_parts),
            np.concatenate(self.right_parts),
            np.concatenate(self.value_parts),
            levels=len(self.feature_parts),
        )
        return tree


def grow_forest(
    features: np.ndarray,
    gradients: np.ndarray,
    hessians: np.ndarray,
    max_depth: int = 4,
    min_samples_leaf: int = 10,
    reg_lambda: float = 1.0,
    min_gain: float = 1e-6,
    return_leaf_ids: bool = False,
) -> "list[BinaryFeatureRegressionTree] | tuple[list[BinaryFeatureRegressionTree], list[np.ndarray]]":
    """Grow one tree per column of ``gradients``/``hessians`` in lockstep.

    All trees share the same ``(n, F)`` feature matrix; their per-level
    histograms are computed by a single ``X^T W`` product over the original
    matrix (one streaming pass over ``X`` per level for the whole group, no
    per-node row copies).  The boosting loop calls this with the ``(n,
    n_classes)`` gradient/hessian matrices of one round.

    Each returned tree is identical to fitting a
    :class:`BinaryFeatureRegressionTree` on its column alone.

    With ``return_leaf_ids=True`` the result is ``(trees, leaf_ids)`` where
    ``leaf_ids[t]`` is the leaf node index each training row ends up in for
    tree ``t`` — a byproduct of routing that saves the boosting loop a full
    re-application of every tree to the training matrix.
    """
    features = validate_feature_matrix(features)
    gradients = np.asarray(gradients, dtype=np.float64)
    hessians = np.asarray(hessians, dtype=np.float64)
    if gradients.ndim != 2 or hessians.ndim != 2:
        raise InvalidParameterError("gradients and hessians must be 2-D (n, n_trees)")
    if gradients.shape != hessians.shape:
        raise InvalidParameterError("gradients and hessians must have the same shape")
    validate_aligned_targets(features, gradients, hessians, names="gradients and hessians")
    _validate_hyperparameters(max_depth, min_samples_leaf, reg_lambda)
    # the histogram product accumulates in float64; binary features are exact
    # in float64, so this single conversion is the only copy of the feature
    # matrix made while growing the whole group
    features64 = np.asarray(features, dtype=np.float64)

    n = features64.shape[0]
    # one contiguous gradient/hessian vector per tree
    gradients_t = np.ascontiguousarray(gradients.T)
    hessians_t = np.ascontiguousarray(hessians.T)
    growers = [
        _TreeGrower(
            gradients_t[t],
            hessians_t[t],
            max_depth,
            min_samples_leaf,
            reg_lambda,
            min_gain,
        )
        for t in range(gradients_t.shape[0])
    ]
    weights_t = np.empty((0, n))  # reused transposed weight buffer
    for depth in range(max_depth + 1):
        rows_needed = [grower.begin_level(depth) for grower in growers]
        total = sum(rows_needed)
        if total == 0:
            break
        if weights_t.shape[0] < total:
            weights_t = np.empty((total, n))
        weights_t[:total] = 0.0
        offset = 0
        for grower, rows in zip(growers, rows_needed):
            if rows:
                grower.scatter(weights_t, offset)
            offset += rows
        hist = get_backend().histogram_product(weights_t[:total], features64)  # (total, F)
        offset = 0
        for grower, rows in zip(growers, rows_needed):
            if rows:
                grower.finish_level(hist[offset : offset + rows], features64)
            offset += rows
    trees = [
        grower.build_tree(max_depth, min_samples_leaf, reg_lambda, min_gain)
        for grower in growers
    ]
    if return_leaf_ids:
        return trees, [grower.leaf_of for grower in growers]
    return trees
