"""Recursive reference implementation of the binary-feature regression tree.

This is the original per-node recursive tree builder that
:class:`repro.ml.tree.BinaryFeatureRegressionTree` replaced with level-wise
histogram growth.  It is kept (unoptimized, one fancy-indexed row copy per
node) as the ground truth for

* the split-parity and golden-prediction tests in ``tests/ml``, and
* the old-vs-new speedup measurement in ``benchmarks/bench_ml_training.py``.

Both implementations choose splits by the same XGBoost-style gain formula
with first-max-feature tie-breaking, so they grow identical trees whenever
gains are untied (floating-point summation order is the only difference).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError, NotFittedError
from .validation import validate_aligned_targets, validate_feature_matrix


@dataclass
class _Node:
    """One node of the fitted tree (internal or leaf)."""

    feature: int = -1
    left: int = -1
    right: int = -1
    value: float = 0.0
    is_leaf: bool = True


class RecursiveBinaryFeatureRegressionTree:
    """Depth-limited regression tree grown by per-node recursion.

    Same objective, hyperparameters and split rule as
    :class:`repro.ml.tree.BinaryFeatureRegressionTree`; see that class for
    the parameter documentation.
    """

    def __init__(
        self,
        max_depth: int = 4,
        min_samples_leaf: int = 10,
        reg_lambda: float = 1.0,
        min_gain: float = 1e-6,
    ) -> None:
        if max_depth < 1:
            raise InvalidParameterError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise InvalidParameterError("min_samples_leaf must be >= 1")
        if reg_lambda < 0:
            raise InvalidParameterError("reg_lambda must be non-negative")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.min_gain = min_gain
        self._nodes: list[_Node] = []

    # ------------------------------------------------------------------ #
    def fit(
        self, features: np.ndarray, gradients: np.ndarray, hessians: np.ndarray
    ) -> "RecursiveBinaryFeatureRegressionTree":
        """Fit the tree to per-sample gradients and hessians."""
        features = validate_feature_matrix(features, dtype=np.float32)
        gradients = np.asarray(gradients, dtype=float).ravel()
        hessians = np.asarray(hessians, dtype=float).ravel()
        validate_aligned_targets(features, gradients, hessians, names="gradients and hessians")
        self._nodes = []
        all_rows = np.arange(features.shape[0])
        self._build(features, gradients, hessians, all_rows, depth=0)
        return self

    def _build(
        self,
        features: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
        rows: np.ndarray,
        depth: int,
    ) -> int:
        """Recursively build the subtree for ``rows``; return its node index."""
        node_index = len(self._nodes)
        self._nodes.append(_Node())
        grad_total = float(gradients[rows].sum())
        hess_total = float(hessians[rows].sum())
        leaf_value = -grad_total / (hess_total + self.reg_lambda)

        if depth >= self.max_depth or rows.size < 2 * self.min_samples_leaf:
            self._nodes[node_index] = _Node(value=leaf_value, is_leaf=True)
            return node_index

        feature_block = features[rows]
        grad_ones = feature_block.T @ gradients[rows]
        hess_ones = feature_block.T @ hessians[rows]
        count_ones = feature_block.sum(axis=0)
        grad_zeros = grad_total - grad_ones
        hess_zeros = hess_total - hess_ones
        count_zeros = rows.size - count_ones

        def score(grad: np.ndarray, hess: np.ndarray) -> np.ndarray:
            denominator = hess + self.reg_lambda
            with np.errstate(divide="ignore", invalid="ignore"):
                value = grad * grad / denominator
            return np.where(denominator > 0, value, 0.0)

        gains = 0.5 * (
            score(grad_ones, hess_ones)
            + score(grad_zeros, hess_zeros)
            - score(np.asarray(grad_total), np.asarray(hess_total))
        )
        valid = (count_ones >= self.min_samples_leaf) & (count_zeros >= self.min_samples_leaf)
        gains = np.where(valid, gains, -np.inf)
        best_feature = int(np.argmax(gains))
        if not np.isfinite(gains[best_feature]) or gains[best_feature] < self.min_gain:
            self._nodes[node_index] = _Node(value=leaf_value, is_leaf=True)
            return node_index

        mask = feature_block[:, best_feature] > 0.5
        right_rows = rows[mask]
        left_rows = rows[~mask]
        left_index = self._build(features, gradients, hessians, left_rows, depth + 1)
        right_index = self._build(features, gradients, hessians, right_rows, depth + 1)
        self._nodes[node_index] = _Node(
            feature=best_feature,
            left=left_index,
            right=right_index,
            value=leaf_value,
            is_leaf=False,
        )
        return node_index

    # ------------------------------------------------------------------ #
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict the leaf value of every row of ``features``."""
        if not self._nodes:
            raise NotFittedError("tree is not fitted")
        features = validate_feature_matrix(features, dtype=np.float32)
        output = np.empty(features.shape[0], dtype=float)
        self._predict_node(0, features, np.arange(features.shape[0]), output)
        return output

    def predict_into(
        self,
        features: np.ndarray,
        out: np.ndarray,
        scale: float = 1.0,
        features_t: np.ndarray | None = None,
    ) -> np.ndarray:
        """Accumulate ``scale * predict(features)`` into ``out`` (API parity).

        ``features_t`` is accepted for interface compatibility and ignored.
        """
        out += scale * self.predict(features)
        return out

    def _predict_node(
        self, node_index: int, features: np.ndarray, rows: np.ndarray, output: np.ndarray
    ) -> None:
        node = self._nodes[node_index]
        if node.is_leaf or rows.size == 0:
            output[rows] = node.value
            return
        mask = features[rows, node.feature] > 0.5
        self._predict_node(node.left, features, rows[~mask], output)
        self._predict_node(node.right, features, rows[mask], output)

    # ------------------------------------------------------------------ #
    @property
    def node_count(self) -> int:
        """Number of nodes in the fitted tree."""
        return len(self._nodes)

    def structure(self) -> dict[str, np.ndarray]:
        """Canonical (breadth-first) structure, comparable across builders.

        Returns the same flat-array layout as
        :meth:`repro.ml.tree.BinaryFeatureRegressionTree.structure`, so the
        recursive (depth-first node numbering) and level-wise trees can be
        compared node for node.
        """
        feature, left, right, value = [], [], [], []
        queue = [0] if self._nodes else []
        order: list[int] = []
        while queue:
            index = queue.pop(0)
            order.append(index)
            node = self._nodes[index]
            if not node.is_leaf:
                queue.extend([node.left, node.right])
        renumber = {old: new for new, old in enumerate(order)}
        for index in order:
            node = self._nodes[index]
            feature.append(-1 if node.is_leaf else node.feature)
            left.append(-1 if node.is_leaf else renumber[node.left])
            right.append(-1 if node.is_leaf else renumber[node.right])
            value.append(node.value)
        return {
            "feature": np.asarray(feature, dtype=np.int32),
            "left": np.asarray(left, dtype=np.int32),
            "right": np.asarray(right, dtype=np.int32),
            "value": np.asarray(value, dtype=np.float64),
        }
