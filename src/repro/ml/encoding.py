"""Featurization of multidimensional LDP reports for the classifier attacks.

The attribute-inference attack (Sec. 3.3) trains a classifier whose input is
the full sanitized tuple ``y = [y_1, ..., y_d]`` produced by RS+FD / RS+RFD
and whose target is the sampled attribute.  The classifier substrate in this
library operates on binary features, so this module flattens the reports
into indicator matrices:

* GRR-style reports (integer per attribute) → one-hot blocks of size ``k_j``;
* UE-style reports (bit vector per attribute) → the raw bits plus per
  attribute "at least ``t`` bits set" indicators, which expose the bit-count
  statistic that separates perturbed-zero-vector fake data from genuine LDP
  reports.
"""

from __future__ import annotations

import numpy as np

from ..core.domain import Domain
from ..exceptions import InvalidParameterError
from ..multidim.base import MultidimReports

#: Maximum number of "bit-count >= t" indicator features added per attribute.
_MAX_COUNT_THRESHOLDS = 4


def one_hot_columns(values: np.ndarray, k: int) -> np.ndarray:
    """One-hot encode an integer column with domain size ``k``."""
    values = np.asarray(values, dtype=np.int64)
    if values.ndim != 1:
        raise InvalidParameterError("values must be a 1-D array")
    if values.size and (values.min() < 0 or values.max() >= k):
        raise InvalidParameterError("values outside [0, k-1]")
    encoded = np.zeros((values.size, k), dtype=np.float32)
    encoded[np.arange(values.size), values] = 1.0
    return encoded


def count_threshold_features(bits: np.ndarray) -> np.ndarray:
    """Indicators ``sum(bits) >= t`` for ``t = 1 .. min(4, k)``.

    These summarize the number of set bits, the statistic that most clearly
    distinguishes UE-z fake data (expected ``k q`` ones) from genuine UE
    reports (expected ``p + (k-1) q`` ones).
    """
    bits = np.asarray(bits)
    counts = bits.sum(axis=1)
    thresholds = range(1, min(_MAX_COUNT_THRESHOLDS, bits.shape[1]) + 1)
    return np.column_stack([(counts >= t) for t in thresholds]).astype(np.float32)


def encode_reports(reports: MultidimReports) -> np.ndarray:
    """Binary feature matrix of shape ``(n, F)`` for an RS+FD/RS+RFD collection."""
    variant = str(reports.extra.get("variant", "grr"))
    blocks: list[np.ndarray] = []
    for j in range(reports.d):
        column = reports.per_attribute[j]
        k = reports.domain.size_of(j)
        if variant == "grr":
            blocks.append(one_hot_columns(np.asarray(column), k))
        else:
            bits = np.asarray(column, dtype=np.float32)
            if bits.ndim != 2 or bits.shape[1] != k:
                raise InvalidParameterError(
                    f"attribute {j} reports must have shape (n, {k}), got {bits.shape}"
                )
            blocks.append(bits)
            blocks.append(count_threshold_features(bits))
    return np.concatenate(blocks, axis=1)


def encode_dataset_rows(data: np.ndarray, domain: Domain) -> np.ndarray:
    """One-hot encode raw (non-sanitized) categorical rows.

    Used by the re-identification matching step when comparing candidate
    background-knowledge profiles in feature space.
    """
    data = np.asarray(data, dtype=np.int64)
    if data.ndim != 2 or data.shape[1] != domain.d:
        raise InvalidParameterError(
            f"data must have shape (n, {domain.d}), got {data.shape}"
        )
    blocks = [one_hot_columns(data[:, j], domain.size_of(j)) for j in range(domain.d)]
    return np.concatenate(blocks, axis=1)
