"""Bernoulli Naive Bayes classifier.

A fast baseline for the attribute-inference attack: all features produced by
:mod:`repro.ml.encoding` are binary, so a Bernoulli model with Laplace
smoothing applies directly.  It is used in the ablation benchmark comparing
classifier choices and as a cheap alternative when a full gradient-boosting
fit is unnecessary.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError, NotFittedError
from .validation import validate_feature_matrix, validate_labels


class BernoulliNaiveBayes:
    """Naive Bayes over binary features with Laplace smoothing.

    Parameters
    ----------
    alpha:
        Additive (Laplace) smoothing applied to the per-class feature
        activation probabilities.
    """

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise InvalidParameterError("alpha must be positive")
        self.alpha = alpha
        self._log_prior: np.ndarray | None = None
        self._log_prob_one: np.ndarray | None = None
        self._log_prob_zero: np.ndarray | None = None
        self.n_classes_: int | None = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "BernoulliNaiveBayes":
        """Estimate per-class activation probabilities."""
        features = validate_feature_matrix(features, dtype=float)
        labels, n_classes = validate_labels(features, labels)
        self.n_classes_ = n_classes

        counts = np.bincount(labels, minlength=n_classes).astype(float)
        # per-class feature activations in one scatter product (no per-class
        # row gathering): activations[c] = sum of feature rows with label c
        one_hot = np.zeros((features.shape[0], n_classes))
        one_hot[np.arange(features.shape[0]), labels] = 1.0
        activations = one_hot.T @ features

        prior = (counts + self.alpha) / (counts.sum() + self.alpha * n_classes)
        prob_one = (activations + self.alpha) / (counts[:, None] + 2.0 * self.alpha)
        self._log_prior = np.log(prior)
        self._log_prob_one = np.log(prob_one)
        self._log_prob_zero = np.log(1.0 - prob_one)
        return self

    def predict_log_proba(self, features: np.ndarray) -> np.ndarray:
        """Unnormalized per-class log-probabilities."""
        if self._log_prior is None:
            raise NotFittedError("classifier is not fitted")
        features = np.asarray(features, dtype=float)
        return (
            self._log_prior[None, :]
            + features @ self._log_prob_one.T
            + (1.0 - features) @ self._log_prob_zero.T
        )

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Normalized class probabilities."""
        log_proba = self.predict_log_proba(features)
        shifted = log_proba - log_proba.max(axis=1, keepdims=True)
        proba = np.exp(shifted)
        return proba / proba.sum(axis=1, keepdims=True)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most likely class per row."""
        return np.argmax(self.predict_log_proba(features), axis=1)
