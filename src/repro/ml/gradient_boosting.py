"""Multiclass gradient-boosted trees (XGBoost stand-in).

The paper's attribute-inference attack trains XGBoost with default parameters
on the RS+FD output tuples.  This module provides a compact, dependency-free
reimplementation of the relevant functionality: gradient boosting with a
softmax objective, one regression tree per class per round, second-order
gradients and shrinkage.  It is deliberately small but captures the signal
the attack exploits (systematic differences between the LDP report and the
fake data), which is what matters for reproducing the paper's orderings.

Hot-path layout: every round's ``n_classes`` trees are grown in lockstep by
:func:`repro.ml.tree.grow_forest` (one histogram pass over the feature
matrix per tree level for the whole round), the feature matrix is converted
to float64 exactly once per fit, and tree outputs are accumulated into a
single reused score buffer via ``predict_into`` instead of allocating a
fresh prediction array per tree.
"""

from __future__ import annotations

import numpy as np

from ..core.rng import RngLike, ensure_rng
from ..exceptions import InvalidParameterError, NotFittedError
from .tree import BinaryFeatureRegressionTree, grow_forest
from .validation import validate_feature_matrix, validate_labels


def softmax(scores: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the usual max-shift for numerical stability."""
    scores = np.asarray(scores, dtype=float)
    shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class GradientBoostingClassifier:
    """Multiclass gradient boosting on binary features.

    Parameters
    ----------
    n_estimators:
        Number of boosting rounds.
    learning_rate:
        Shrinkage applied to each tree's output.
    max_depth, min_samples_leaf, reg_lambda:
        Passed to the base :class:`~repro.ml.tree.BinaryFeatureRegressionTree`.
    subsample:
        Fraction of rows sampled (without replacement) per round; 1.0 uses
        all rows.
    rng:
        Seed or generator controlling row subsampling.
    tree_class:
        Base-learner class; defaults to the level-wise
        :class:`~repro.ml.tree.BinaryFeatureRegressionTree` (trained via the
        lockstep :func:`~repro.ml.tree.grow_forest` fast path).  Any class
        with the same constructor and ``fit``/``predict_into`` interface —
        e.g. the recursive reference tree in :mod:`repro.ml.tree_reference`
        — can be substituted for parity testing and benchmarking; non-default
        classes are fitted one tree at a time.
    """

    def __init__(
        self,
        n_estimators: int = 30,
        learning_rate: float = 0.3,
        max_depth: int = 4,
        min_samples_leaf: int = 10,
        reg_lambda: float = 1.0,
        subsample: float = 1.0,
        rng: RngLike = None,
        tree_class: type | None = None,
    ) -> None:
        if n_estimators < 1:
            raise InvalidParameterError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise InvalidParameterError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise InvalidParameterError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.subsample = subsample
        self.tree_class = tree_class or BinaryFeatureRegressionTree
        self._rng = ensure_rng(rng)
        self._trees: list[list] = []
        self._base_scores: np.ndarray | None = None
        self.n_classes_: int | None = None

    # ------------------------------------------------------------------ #
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "GradientBoostingClassifier":
        """Fit the boosting ensemble on integer class labels."""
        # one float64 conversion shared by every tree of every round
        features = validate_feature_matrix(features, dtype=np.float64)
        labels, n_classes = validate_labels(features, labels)
        n_samples = features.shape[0]

        self.n_classes_ = n_classes
        one_hot = np.zeros((n_samples, n_classes), dtype=float)
        one_hot[np.arange(n_samples), labels] = 1.0

        # start from the log class priors so the untrained model already
        # predicts the majority class
        class_priors = one_hot.mean(axis=0)
        class_priors = np.clip(class_priors, 1e-12, None)
        self._base_scores = np.log(class_priors)

        scores = np.tile(self._base_scores, (n_samples, 1))
        # contiguous transpose shared by every tree's batched prediction
        # (only needed when trees must be re-applied to the full matrix)
        features_t = (
            np.ascontiguousarray(features.T)
            if self.subsample < 1.0 or self.tree_class is not BinaryFeatureRegressionTree
            else None
        )
        self._trees = []
        for _ in range(self.n_estimators):
            probabilities = softmax(scores)
            gradients = probabilities - one_hot
            hessians = np.clip(probabilities * (1.0 - probabilities), 1e-6, None)
            if self.subsample < 1.0:
                sample_size = max(1, int(round(self.subsample * n_samples)))
                rows = self._rng.choice(n_samples, size=sample_size, replace=False)
                round_trees, _ = self._fit_round(
                    features[rows], gradients[rows], hessians[rows]
                )
            else:
                round_trees, leaf_ids = self._fit_round(features, gradients, hessians)
                if leaf_ids is not None:
                    # lockstep growth already routed every training row to
                    # its leaf: the score update is a plain gather, no
                    # re-application of the trees to the training matrix
                    for class_index, (tree, leaves) in enumerate(
                        zip(round_trees, leaf_ids)
                    ):
                        scores[:, class_index] += self.learning_rate * tree._value[leaves]
                    self._trees.append(round_trees)
                    continue
            for class_index, tree in enumerate(round_trees):
                tree.predict_into(
                    features, scores[:, class_index], self.learning_rate,
                    features_t=features_t,
                )
            self._trees.append(round_trees)
        return self

    def _fit_round(
        self, features: np.ndarray, gradients: np.ndarray, hessians: np.ndarray
    ) -> tuple[list, "list[np.ndarray] | None"]:
        """Train one boosting round: one tree per class.

        Returns ``(trees, leaf_ids)``; ``leaf_ids`` carries each training
        row's leaf per tree on the lockstep fast path and is ``None`` for
        substituted tree classes (which are fitted one tree at a time).
        """
        if self.tree_class is BinaryFeatureRegressionTree:
            return grow_forest(
                features,
                gradients,
                hessians,
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                reg_lambda=self.reg_lambda,
                return_leaf_ids=True,
            )
        round_trees = []
        for class_index in range(gradients.shape[1]):
            tree = self.tree_class(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                reg_lambda=self.reg_lambda,
            )
            tree.fit(features, gradients[:, class_index], hessians[:, class_index])
            round_trees.append(tree)
        return round_trees, None

    # ------------------------------------------------------------------ #
    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Raw (pre-softmax) scores for every class.

        Accumulates every tree's contribution into one ``(n, n_classes)``
        score buffer — no per-tree prediction arrays, no re-stacking.
        """
        if self._base_scores is None or self.n_classes_ is None:
            raise NotFittedError("classifier is not fitted")
        features = validate_feature_matrix(features)
        scores = np.empty((features.shape[0], self.n_classes_), dtype=np.float64)
        scores[:] = self._base_scores
        features_t = np.ascontiguousarray(features.T)
        for round_trees in self._trees:
            for class_index, tree in enumerate(round_trees):
                tree.predict_into(
                    features, scores[:, class_index], self.learning_rate,
                    features_t=features_t,
                )
        return scores

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class-membership probabilities."""
        return softmax(self.decision_function(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most likely class per row."""
        return np.argmax(self.decision_function(features), axis=1)
