"""Multiclass gradient-boosted trees (XGBoost stand-in).

The paper's attribute-inference attack trains XGBoost with default parameters
on the RS+FD output tuples.  This module provides a compact, dependency-free
reimplementation of the relevant functionality: gradient boosting with a
softmax objective, one regression tree per class per round, second-order
gradients and shrinkage.  It is deliberately small but captures the signal
the attack exploits (systematic differences between the LDP report and the
fake data), which is what matters for reproducing the paper's orderings.
"""

from __future__ import annotations

import numpy as np

from ..core.rng import RngLike, ensure_rng
from ..exceptions import InvalidParameterError, NotFittedError
from .tree import BinaryFeatureRegressionTree


def softmax(scores: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the usual max-shift for numerical stability."""
    scores = np.asarray(scores, dtype=float)
    shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class GradientBoostingClassifier:
    """Multiclass gradient boosting on binary features.

    Parameters
    ----------
    n_estimators:
        Number of boosting rounds.
    learning_rate:
        Shrinkage applied to each tree's output.
    max_depth, min_samples_leaf, reg_lambda:
        Passed to the base :class:`~repro.ml.tree.BinaryFeatureRegressionTree`.
    subsample:
        Fraction of rows sampled (without replacement) per round; 1.0 uses
        all rows.
    rng:
        Seed or generator controlling row subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 30,
        learning_rate: float = 0.3,
        max_depth: int = 4,
        min_samples_leaf: int = 10,
        reg_lambda: float = 1.0,
        subsample: float = 1.0,
        rng: RngLike = None,
    ) -> None:
        if n_estimators < 1:
            raise InvalidParameterError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise InvalidParameterError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise InvalidParameterError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.subsample = subsample
        self._rng = ensure_rng(rng)
        self._trees: list[list[BinaryFeatureRegressionTree]] = []
        self._base_scores: np.ndarray | None = None
        self.n_classes_: int | None = None

    # ------------------------------------------------------------------ #
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "GradientBoostingClassifier":
        """Fit the boosting ensemble on integer class labels."""
        features = np.asarray(features, dtype=np.float32)
        labels = np.asarray(labels, dtype=np.int64).ravel()
        if features.ndim != 2:
            raise InvalidParameterError("features must be a 2-D array")
        if labels.shape[0] != features.shape[0]:
            raise InvalidParameterError("features and labels must align")
        if labels.min() < 0:
            raise InvalidParameterError("labels must be non-negative integers")
        n_classes = int(labels.max()) + 1
        if n_classes < 2:
            raise InvalidParameterError("at least two classes are required")
        n_samples = features.shape[0]

        self.n_classes_ = n_classes
        one_hot = np.zeros((n_samples, n_classes), dtype=float)
        one_hot[np.arange(n_samples), labels] = 1.0

        # start from the log class priors so the untrained model already
        # predicts the majority class
        class_priors = one_hot.mean(axis=0)
        class_priors = np.clip(class_priors, 1e-12, None)
        self._base_scores = np.log(class_priors)

        scores = np.tile(self._base_scores, (n_samples, 1))
        self._trees = []
        for _ in range(self.n_estimators):
            probabilities = softmax(scores)
            gradients = probabilities - one_hot
            hessians = np.clip(probabilities * (1.0 - probabilities), 1e-6, None)
            if self.subsample < 1.0:
                sample_size = max(1, int(round(self.subsample * n_samples)))
                rows = self._rng.choice(n_samples, size=sample_size, replace=False)
            else:
                rows = np.arange(n_samples)
            round_trees = []
            for class_index in range(n_classes):
                tree = BinaryFeatureRegressionTree(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    reg_lambda=self.reg_lambda,
                )
                tree.fit(features[rows], gradients[rows, class_index], hessians[rows, class_index])
                scores[:, class_index] += self.learning_rate * tree.predict(features)
                round_trees.append(tree)
            self._trees.append(round_trees)
        return self

    # ------------------------------------------------------------------ #
    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Raw (pre-softmax) scores for every class."""
        if self._base_scores is None or self.n_classes_ is None:
            raise NotFittedError("classifier is not fitted")
        features = np.asarray(features, dtype=np.float32)
        scores = np.tile(self._base_scores, (features.shape[0], 1))
        for round_trees in self._trees:
            for class_index, tree in enumerate(round_trees):
                scores[:, class_index] += self.learning_rate * tree.predict(features)
        return scores

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class-membership probabilities."""
        return softmax(self.decision_function(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most likely class per row."""
        return np.argmax(self.decision_function(features), axis=1)
