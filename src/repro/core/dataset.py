"""Tabular multidimensional dataset container.

:class:`TabularDataset` wraps an ``(n, d)`` integer matrix of category codes
together with the :class:`~repro.core.domain.Domain` describing it.  It is the
object passed around by the multidimensional-collection solutions, the attacks
and the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..exceptions import DomainMismatchError, InvalidParameterError
from .domain import Domain
from .rng import RngLike, ensure_rng


@dataclass(frozen=True)
class TabularDataset:
    """An immutable table of ``n`` users times ``d`` categorical attributes.

    Parameters
    ----------
    domain:
        Schema of the table.
    data:
        ``(n, d)`` array of integer codes; column ``j`` takes values in
        ``{0, ..., k_j - 1}``.
    name:
        Optional dataset name used in reports.
    """

    domain: Domain
    data: np.ndarray
    name: str = "dataset"

    def __post_init__(self) -> None:
        data = np.ascontiguousarray(np.asarray(self.data, dtype=np.int64))
        if data.ndim != 2:
            raise DomainMismatchError(f"data must be 2-D, got shape {data.shape}")
        self.domain.validate_matrix(data)
        data.setflags(write=False)
        object.__setattr__(self, "data", data)

    # -- basic protocol ----------------------------------------------------
    def __len__(self) -> int:
        return self.n

    @property
    def n(self) -> int:
        """Number of users (rows)."""
        return int(self.data.shape[0])

    @property
    def d(self) -> int:
        """Number of attributes (columns)."""
        return self.domain.d

    @property
    def sizes(self) -> tuple[int, ...]:
        """Domain sizes ``k``."""
        return self.domain.sizes

    def column(self, index: int) -> np.ndarray:
        """Return column ``index`` as a read-only 1-D array."""
        return self.data[:, index]

    def row(self, index: int) -> np.ndarray:
        """Return the record of user ``index``."""
        return self.data[index, :]

    # -- statistics --------------------------------------------------------
    def frequencies(self, index: int) -> np.ndarray:
        """Normalized histogram (true frequencies) of attribute ``index``."""
        k = self.domain.size_of(index)
        counts = np.bincount(self.column(index), minlength=k).astype(float)
        if self.n == 0:
            return counts
        return counts / self.n

    def all_frequencies(self) -> list[np.ndarray]:
        """True frequencies of every attribute, in order."""
        return [self.frequencies(j) for j in range(self.d)]

    def uniqueness(self, indices: Sequence[int] | None = None) -> float:
        """Fraction of users whose record is unique on ``indices``.

        This is the "uniqueness" driver of the re-identification results:
        the more unique users are on the collected attributes, the higher the
        attainable RID-ACC.
        """
        indices = list(range(self.d)) if indices is None else list(indices)
        if not indices:
            raise InvalidParameterError("indices must not be empty")
        sub = self.data[:, indices]
        _, inverse, counts = np.unique(
            sub, axis=0, return_inverse=True, return_counts=True
        )
        return float(np.mean(counts[inverse] == 1))

    # -- transformations ---------------------------------------------------
    def project(self, indices: Iterable[int], name: str | None = None) -> "TabularDataset":
        """Return a dataset restricted to the attributes ``indices``."""
        indices = list(indices)
        sub_domain = self.domain.subset(indices)
        return TabularDataset(
            domain=sub_domain,
            data=self.data[:, indices].copy(),
            name=name or f"{self.name}[{len(indices)} attrs]",
        )

    def sample_users(
        self, count: int, rng: RngLike = None, replace: bool = False
    ) -> tuple["TabularDataset", np.ndarray]:
        """Sample ``count`` users, returning the sub-dataset and row indices."""
        if count <= 0:
            raise InvalidParameterError("count must be positive")
        if not replace and count > self.n:
            raise InvalidParameterError(
                f"cannot sample {count} users without replacement from {self.n}"
            )
        generator = ensure_rng(rng)
        idx = generator.choice(self.n, size=count, replace=replace)
        return (
            TabularDataset(self.domain, self.data[idx].copy(), name=f"{self.name}[sample]"),
            idx,
        )

    def split_users(
        self, first_count: int, rng: RngLike = None
    ) -> tuple["TabularDataset", "TabularDataset", np.ndarray, np.ndarray]:
        """Randomly split the users into two disjoint datasets.

        Returns ``(first, second, first_indices, second_indices)`` where the
        first part has ``first_count`` users.  Used by the partial-knowledge
        attribute-inference attack to carve out compromised profiles.
        """
        if not 0 < first_count < self.n:
            raise InvalidParameterError(
                f"first_count must be in (0, {self.n}), got {first_count}"
            )
        generator = ensure_rng(rng)
        permutation = generator.permutation(self.n)
        first_idx = np.sort(permutation[:first_count])
        second_idx = np.sort(permutation[first_count:])
        first = TabularDataset(self.domain, self.data[first_idx].copy(), name=f"{self.name}[pk]")
        second = TabularDataset(self.domain, self.data[second_idx].copy(), name=f"{self.name}[rest]")
        return first, second, first_idx, second_idx

    @classmethod
    def from_columns(
        cls, columns: Sequence[np.ndarray], domain: Domain, name: str = "dataset"
    ) -> "TabularDataset":
        """Assemble a dataset from per-attribute code vectors."""
        if len(columns) != domain.d:
            raise DomainMismatchError(
                f"expected {domain.d} columns, got {len(columns)}"
            )
        data = np.column_stack([np.asarray(c, dtype=np.int64) for c in columns])
        return cls(domain=domain, data=data, name=name)
