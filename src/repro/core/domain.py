"""Attribute and domain descriptions for multidimensional categorical data.

The paper models each user profile as a tuple ``v = [v_1, ..., v_d]`` where
attribute ``A_j`` has a discrete domain of size ``k_j``.  This module provides
two small immutable value objects:

* :class:`Attribute` — one categorical attribute (name + domain size).
* :class:`Domain` — an ordered collection of attributes, i.e. the schema of a
  multidimensional dataset.

Values are always represented as integer codes in ``{0, ..., k_j - 1}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..exceptions import DomainMismatchError, InvalidParameterError


@dataclass(frozen=True)
class Attribute:
    """A single categorical attribute.

    Parameters
    ----------
    name:
        Human-readable attribute name (e.g. ``"age"``).
    size:
        Domain size ``k_j`` (number of distinct categories); must be >= 2.
    """

    name: str
    size: int

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidParameterError("attribute name must be a non-empty string")
        if int(self.size) < 2:
            raise InvalidParameterError(
                f"attribute {self.name!r} must have a domain size >= 2, got {self.size}"
            )
        object.__setattr__(self, "size", int(self.size))

    @property
    def values(self) -> range:
        """The valid integer codes ``0 .. size-1`` of this attribute."""
        return range(self.size)

    def contains(self, value: int) -> bool:
        """Return whether ``value`` is a valid code for this attribute."""
        return 0 <= int(value) < self.size


@dataclass(frozen=True)
class Domain:
    """Ordered schema of ``d`` categorical attributes.

    A :class:`Domain` is the in-memory counterpart of the paper's
    ``A = {A_1, ..., A_d}`` with domain sizes ``k = [k_1, ..., k_d]``.
    """

    attributes: tuple[Attribute, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        attrs = tuple(self.attributes)
        if len(attrs) == 0:
            raise InvalidParameterError("a Domain needs at least one attribute")
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            raise InvalidParameterError(f"duplicate attribute names in domain: {names}")
        object.__setattr__(self, "attributes", attrs)

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_sizes(cls, sizes: Sequence[int], names: Sequence[str] | None = None) -> "Domain":
        """Build a domain from a list of domain sizes ``k``.

        If ``names`` is omitted, attributes are called ``A1 .. Ad``.
        """
        sizes = list(sizes)
        if names is None:
            names = [f"A{j + 1}" for j in range(len(sizes))]
        if len(names) != len(sizes):
            raise InvalidParameterError("names and sizes must have the same length")
        return cls(tuple(Attribute(n, k) for n, k in zip(names, sizes)))

    # -- basic protocol ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __getitem__(self, index: int) -> Attribute:
        return self.attributes[index]

    # -- accessors ---------------------------------------------------------
    @property
    def d(self) -> int:
        """Number of attributes (the paper's ``d``)."""
        return len(self.attributes)

    @property
    def sizes(self) -> tuple[int, ...]:
        """Domain sizes ``k = (k_1, ..., k_d)``."""
        return tuple(a.size for a in self.attributes)

    @property
    def names(self) -> tuple[str, ...]:
        """Attribute names in order."""
        return tuple(a.name for a in self.attributes)

    def size_of(self, index: int) -> int:
        """Domain size ``k_j`` of attribute ``index``."""
        return self.attributes[index].size

    def index_of(self, name: str) -> int:
        """Index of the attribute called ``name``."""
        for j, attr in enumerate(self.attributes):
            if attr.name == name:
                return j
        raise KeyError(f"no attribute named {name!r} in domain")

    def subset(self, indices: Iterable[int]) -> "Domain":
        """Return a new domain containing only ``indices`` (order preserved)."""
        indices = list(indices)
        if not indices:
            raise InvalidParameterError("cannot build an empty sub-domain")
        return Domain(tuple(self.attributes[j] for j in indices))

    # -- validation --------------------------------------------------------
    def validate_tuple(self, values: Sequence[int]) -> None:
        """Check that ``values`` is a valid record for this domain."""
        if len(values) != self.d:
            raise DomainMismatchError(
                f"tuple has {len(values)} values but domain has {self.d} attributes"
            )
        for j, (attr, value) in enumerate(zip(self.attributes, values)):
            if not attr.contains(int(value)):
                raise DomainMismatchError(
                    f"value {value} is outside the domain of attribute "
                    f"{attr.name!r} (index {j}, size {attr.size})"
                )

    def validate_matrix(self, data: np.ndarray) -> None:
        """Check that an ``(n, d)`` integer matrix respects this domain."""
        data = np.asarray(data)
        if data.ndim != 2 or data.shape[1] != self.d:
            raise DomainMismatchError(
                f"data must be a 2-D array with {self.d} columns, got shape {data.shape}"
            )
        if data.size == 0:
            return
        mins = data.min(axis=0)
        maxs = data.max(axis=0)
        for j, attr in enumerate(self.attributes):
            if mins[j] < 0 or maxs[j] >= attr.size:
                raise DomainMismatchError(
                    f"column {j} ({attr.name!r}) has values outside [0, {attr.size - 1}]"
                )
