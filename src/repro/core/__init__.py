"""Core data model: domains, datasets, frequencies and composition rules."""

from .composition import (
    amplified_epsilon,
    deamplified_epsilon,
    parallel_composition,
    sequential_composition,
    split_budget,
    validate_epsilon,
)
from .dataset import TabularDataset
from .domain import Attribute, Domain
from .frequencies import FrequencyEstimate, averaged_mse, true_frequencies
from .retry import RetryPolicy, retry_call
from .rng import derive_rng, derive_seed_sequence, ensure_rng, spawn_rngs

__all__ = [
    "Attribute",
    "Domain",
    "TabularDataset",
    "FrequencyEstimate",
    "averaged_mse",
    "true_frequencies",
    "ensure_rng",
    "spawn_rngs",
    "derive_rng",
    "derive_seed_sequence",
    "RetryPolicy",
    "retry_call",
    "validate_epsilon",
    "split_budget",
    "sequential_composition",
    "parallel_composition",
    "amplified_epsilon",
    "deamplified_epsilon",
]
