"""Random-number-generation helpers.

Every stochastic component of the library accepts either ``None``, an integer
seed or a :class:`numpy.random.Generator` and normalizes it through
:func:`ensure_rng`.  This keeps experiments reproducible (pass a seed) while
allowing composition (pass a shared generator).
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

from ..exceptions import InvalidParameterError

RngLike = Union[None, int, np.random.Generator]

KeyPart = Union[str, int, float, bool]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` (fresh non-deterministic generator), an integer seed, or an
        existing generator (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be None, an int seed or a numpy Generator, got {type(rng)!r}"
    )


def spawn_rngs(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Useful for giving each repetition of an experiment its own stream so the
    repetitions are independent yet reproducible from a single seed.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed_sequence(master_seed: int, *key_parts: KeyPart) -> np.random.SeedSequence:
    """Derive a :class:`numpy.random.SeedSequence` from a master seed and a key.

    Unlike :meth:`SeedSequence.spawn`, the derivation depends only on
    ``(master_seed, key_parts)`` — not on how many sequences were spawned
    before or in which order — so any cell of an experiment grid can
    recreate its stream independently of scheduling.  The key parts are
    joined and hashed (SHA-256) and the digest words are mixed into the
    entropy pool together with the master seed.
    """
    if not isinstance(master_seed, (int, np.integer)):
        raise TypeError(f"master_seed must be an int, got {type(master_seed)!r}")
    if int(master_seed) < 0:
        # SeedSequence only accepts non-negative entropy; fail with the
        # library's parameter error so callers (e.g. the CLI) report it cleanly
        raise InvalidParameterError(
            f"master_seed must be non-negative, got {master_seed}"
        )
    for part in key_parts:
        if not isinstance(part, (str, int, float, bool, np.integer, np.floating)):
            raise TypeError(
                f"key parts must be str/int/float/bool, got {type(part)!r}"
            )
    material = "\x1f".join(repr(part) for part in key_parts)
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    words = np.frombuffer(digest[:16], dtype=np.uint32)
    return np.random.SeedSequence([int(master_seed), *(int(w) for w in words)])


def derive_rng(master_seed: int, *key_parts: KeyPart) -> np.random.Generator:
    """Deterministic generator for ``(master_seed, key_parts)``.

    The workhorse of the experiment-grid engine: every grid cell derives its
    own independent stream from the single master seed and its cell key, so
    results are bit-identical no matter how many workers execute the grid or
    in which order the cells complete.
    """
    return np.random.default_rng(derive_seed_sequence(master_seed, *key_parts))
