"""Random-number-generation helpers.

Every stochastic component of the library accepts either ``None``, an integer
seed or a :class:`numpy.random.Generator` and normalizes it through
:func:`ensure_rng`.  This keeps experiments reproducible (pass a seed) while
allowing composition (pass a shared generator).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` (fresh non-deterministic generator), an integer seed, or an
        existing generator (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be None, an int seed or a numpy Generator, got {type(rng)!r}"
    )


def spawn_rngs(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Useful for giving each repetition of an experiment its own stream so the
    repetitions are independent yet reproducible from a single seed.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
