"""Frequency-estimate containers and helpers.

The aggregator's goal in the paper is to produce, for every attribute, a
``k_j``-bin histogram estimate.  :class:`FrequencyEstimate` stores one such
histogram (raw, i.e. possibly slightly negative or above one because the LDP
estimators are unbiased but unconstrained) and exposes common
post-processing / error metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..exceptions import InvalidParameterError


@dataclass(frozen=True)
class FrequencyEstimate:
    """Estimated frequency histogram for one attribute.

    Parameters
    ----------
    estimates:
        Raw unbiased estimates ``f_hat`` (length ``k_j``).
    attribute:
        Attribute name the estimates refer to.
    n:
        Number of reports used to build the estimate.
    metadata:
        Free-form extra information (protocol name, epsilon, ...).
    """

    estimates: np.ndarray
    attribute: str = "attribute"
    n: int = 0
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        values = np.asarray(self.estimates, dtype=float).copy()
        if values.ndim != 1:
            raise InvalidParameterError("estimates must be a 1-D array")
        values.setflags(write=False)
        object.__setattr__(self, "estimates", values)
        object.__setattr__(self, "metadata", dict(self.metadata))

    @property
    def k(self) -> int:
        """Domain size of the estimated attribute."""
        return int(self.estimates.shape[0])

    def as_array(self) -> np.ndarray:
        """Return a writable copy of the raw estimates."""
        return np.array(self.estimates, dtype=float)

    def clipped(self) -> np.ndarray:
        """Estimates clipped to ``[0, 1]`` (simple post-processing)."""
        return np.clip(self.estimates, 0.0, 1.0)

    def normalized(self) -> np.ndarray:
        """Clip to non-negative values and re-normalize to sum to one.

        This is the standard "norm-sub-like" consistency step; it never
        affects unbiasedness tests in this library (those operate on the raw
        estimates) but is useful when the estimate feeds synthetic-profile
        generation, which requires a proper probability vector.
        """
        clipped = np.clip(self.estimates, 0.0, None)
        total = clipped.sum()
        if total <= 0:
            return np.full(self.k, 1.0 / self.k)
        return clipped / total

    def mse(self, true_frequencies: Sequence[float]) -> float:
        """Mean squared error against the true frequencies."""
        truth = np.asarray(true_frequencies, dtype=float)
        if truth.shape != self.estimates.shape:
            raise InvalidParameterError(
                f"true frequencies have shape {truth.shape}, expected {self.estimates.shape}"
            )
        return float(np.mean((truth - self.estimates) ** 2))


def validate_probability_vector(
    probabilities: Sequence[float] | np.ndarray,
    k: int | None = None,
    context: str = "probabilities",
) -> np.ndarray:
    """Validate and normalize a probability vector (e.g. RS+RFD priors).

    Rejects non-1-D input, a length mismatch with ``k``, NaN/inf entries,
    negative mass and all-zero vectors — every case that would otherwise
    surface as NaN probabilities and a cryptic numpy error deep inside
    ``rng.choice``.  Returns a fresh array normalized to sum to one.
    """
    values = np.asarray(probabilities, dtype=float)
    if values.ndim != 1:
        raise InvalidParameterError(f"{context} must be a 1-D vector, got shape {values.shape}")
    if k is not None and values.shape != (int(k),):
        raise InvalidParameterError(
            f"{context} must have length {k}, got {values.shape}"
        )
    if not np.all(np.isfinite(values)):
        raise InvalidParameterError(f"{context} contains NaN or infinite entries")
    if np.any(values < 0):
        raise InvalidParameterError(f"{context} has negative mass")
    total = values.sum()
    if total <= 0:
        raise InvalidParameterError(f"{context} sums to zero; cannot normalize")
    return values / total


def true_frequencies(values: np.ndarray, k: int) -> np.ndarray:
    """Normalized histogram of integer codes ``values`` over domain size ``k``."""
    values = np.asarray(values, dtype=np.int64)
    if k < 2:
        raise InvalidParameterError("k must be >= 2")
    if values.size == 0:
        return np.zeros(k)
    if values.min() < 0 or values.max() >= k:
        raise InvalidParameterError("values outside [0, k-1]")
    counts = np.bincount(values, minlength=k).astype(float)
    return counts / values.size


def averaged_mse(
    estimates: Sequence[FrequencyEstimate], truths: Sequence[np.ndarray]
) -> float:
    """Paper's ``MSE_avg`` metric: mean over attributes of per-value MSE.

    ``MSE_avg = (1/d) * sum_j (1/k_j) * sum_v (f_j(v) - f_hat_j(v))^2``
    """
    if len(estimates) != len(truths):
        raise InvalidParameterError("estimates and truths must have the same length")
    if not estimates:
        raise InvalidParameterError("at least one attribute is required")
    return float(np.mean([est.mse(truth) for est, truth in zip(estimates, truths)]))
