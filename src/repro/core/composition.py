"""Differential-privacy composition and amplification helpers.

Implements the three budget rules the paper relies on:

* sequential composition — the SPL solution splits ``epsilon`` over ``d``
  attributes (each report gets ``epsilon / d``);
* parallel composition — disjoint data can each use the full budget;
* amplification by sampling (Li et al., 2012) — the RS+FD / RS+RFD solutions
  sample one attribute out of ``d`` and may therefore use the amplified
  budget ``epsilon' = ln(d * (e^epsilon - 1) + 1)``.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..exceptions import InvalidParameterError, InvalidPrivacyBudgetError


def validate_epsilon(epsilon: float) -> float:
    """Validate and return a privacy budget (must be positive and finite)."""
    value = float(epsilon)
    if not math.isfinite(value) or value <= 0.0:
        raise InvalidPrivacyBudgetError(
            f"epsilon must be a positive finite number, got {epsilon!r}"
        )
    return value


def split_budget(epsilon: float, d: int) -> float:
    """Sequential composition used by the SPL solution: ``epsilon / d``."""
    epsilon = validate_epsilon(epsilon)
    if d < 1:
        raise InvalidParameterError("d must be >= 1")
    return epsilon / d


def sequential_composition(epsilons: Sequence[float]) -> float:
    """Total budget consumed by a sequence of mechanisms on the same data."""
    if not epsilons:
        raise InvalidParameterError("at least one epsilon is required")
    return float(sum(validate_epsilon(e) for e in epsilons))


def parallel_composition(epsilons: Sequence[float]) -> float:
    """Budget consumed when mechanisms act on disjoint parts of the data."""
    if not epsilons:
        raise InvalidParameterError("at least one epsilon is required")
    return float(max(validate_epsilon(e) for e in epsilons))


def amplified_epsilon(epsilon: float, d: int) -> float:
    """Amplification by sampling: ``epsilon' = ln(d * (e^epsilon - 1) + 1)``.

    Sampling one attribute uniformly among ``d`` before applying an
    ``epsilon'``-LDP randomizer yields an overall ``epsilon``-LDP guarantee;
    RS+FD and RS+RFD therefore sanitize the sampled attribute with
    ``epsilon'``.
    """
    epsilon = validate_epsilon(epsilon)
    if d < 1:
        raise InvalidParameterError("d must be >= 1")
    return math.log(d * (math.exp(epsilon) - 1.0) + 1.0)


def deamplified_epsilon(epsilon_prime: float, d: int) -> float:
    """Inverse of :func:`amplified_epsilon` (the effective per-user budget)."""
    epsilon_prime = validate_epsilon(epsilon_prime)
    if d < 1:
        raise InvalidParameterError("d must be >= 1")
    inner = (math.exp(epsilon_prime) - 1.0) / d + 1.0
    return math.log(inner)
