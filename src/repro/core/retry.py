"""Shared bounded-retry policy: capped exponential backoff, deterministic jitter.

Every transient-failure seam of the library retries through one policy
object so the backoff shape cannot silently diverge between components:

* the remote worker's connect/report loop
  (:mod:`repro.experiments.remote`) retries coordinator requests that hit
  a network error;
* the coordinator's lease re-grant policy backs off re-leasing a cell
  whose worker died, so a poisoned cell cannot hot-loop through workers;
* :class:`repro.experiments.cellstore.SQLiteCellStore` retries write
  transactions on a locked database instead of leaning on one long
  ``busy_timeout``.

Jitter is *deterministic*: it is derived from the retry key and attempt
number through :func:`repro.core.rng.derive_rng`, never from wall-clock or
OS entropy.  Two processes retrying the same key therefore back off
identically run-to-run (reproducible schedules, testable without sleeping),
while different keys decorrelate — which is all jitter is for.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator, Tuple, Type, TypeVar

from ..exceptions import InvalidParameterError
from .rng import derive_rng

T = TypeVar("T")

#: Master seed of the jitter stream.  A fixed constant: retry jitter must be
#: reproducible across processes and runs, independent of any grid seed.
_JITTER_SEED = 0


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic, key-derived jitter.

    Attributes
    ----------
    max_retries:
        How many times an operation is retried *after* its first attempt
        (``0`` disables retrying).  The total number of attempts is
        ``max_retries + 1``.
    base_delay:
        Delay before the first retry, in seconds.
    max_delay:
        Cap on every delay (the exponential growth saturates here).
    multiplier:
        Geometric growth factor between consecutive delays.
    jitter:
        Fraction of each delay randomized deterministically (``0.1`` means
        ±10%).  The jitter factor depends only on ``(key, attempt)``, so a
        retry schedule is reproducible while distinct keys decorrelate.
    """

    max_retries: int = 5
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if int(self.max_retries) < 0:
            raise InvalidParameterError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if not self.base_delay > 0:
            raise InvalidParameterError(
                f"base_delay must be > 0, got {self.base_delay}"
            )
        if self.max_delay < self.base_delay:
            raise InvalidParameterError(
                f"max_delay must be >= base_delay, got {self.max_delay}"
            )
        if self.multiplier < 1:
            raise InvalidParameterError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0 <= self.jitter < 1:
            raise InvalidParameterError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt`` (0-based), in seconds.

        ``min(max_delay, base_delay * multiplier**attempt)``, scaled by the
        deterministic jitter factor of ``(key, attempt)``.
        """
        if int(attempt) < 0:
            raise InvalidParameterError(f"attempt must be >= 0, got {attempt}")
        raw = min(float(self.max_delay), float(self.base_delay) * float(self.multiplier) ** int(attempt))
        if self.jitter:
            rng = derive_rng(_JITTER_SEED, "retry-jitter", key, int(attempt))
            raw *= 1.0 + float(self.jitter) * (2.0 * float(rng.random()) - 1.0)
        return min(raw, float(self.max_delay))

    def delays(self, key: str = "") -> Iterator[float]:
        """The policy's full backoff schedule (``max_retries`` delays)."""
        for attempt in range(int(self.max_retries)):
            yield self.delay(attempt, key=key)


def retry_call(
    fn: Callable[[], T],
    policy: RetryPolicy,
    key: str = "",
    retry_on: Tuple[Type[BaseException], ...] = (OSError,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: "Callable[[int, BaseException, float], None] | None" = None,
) -> T:
    """Call ``fn`` with bounded retries under ``policy``.

    Exceptions matching ``retry_on`` trigger a backoff sleep and a retry, up
    to ``policy.max_retries`` times; the final failure re-raises the last
    exception unchanged (callers keep their existing ``except`` semantics —
    e.g. the cell store's degrade-to-a-warned-miss path).  Any other
    exception propagates immediately.

    ``sleep`` is injectable so tests can record the schedule instead of
    waiting it out; ``on_retry(attempt, exc, delay)`` observes each retry.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except retry_on as exc:
            if attempt >= int(policy.max_retries):
                raise
            pause = policy.delay(attempt, key=key)
            if on_retry is not None:
                on_retry(attempt, exc, pause)
            sleep(pause)
            attempt += 1
