"""Setuptools shim enabling legacy editable installs in offline environments.

The canonical project metadata lives in ``pyproject.toml``; this file exists
only so ``pip install -e . --no-build-isolation --no-use-pep517`` works on
machines without the ``wheel`` package (no network access).
"""

from setuptools import setup

setup()
